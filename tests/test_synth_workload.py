"""Integration tests for repro.synth.workload — the dataset builders."""

import pytest

from repro.logs.summary import summarize
from repro.synth.workload import (
    EPOCH_2019,
    WorkloadBuilder,
    WorkloadConfig,
    long_term_config,
    short_term_config,
)


class TestConfigs:
    def test_short_term_shape(self):
        config = short_term_config(100_000, seed=1)
        assert config.duration_s == 600.0
        assert config.num_domains >= 50
        assert not config.diurnal

    def test_long_term_shape(self):
        config = long_term_config(100_000, seed=1)
        assert config.duration_s == 86_400.0
        assert config.num_domains == 170
        assert config.num_edges == 3
        assert config.diurnal

    def test_overrides_accepted(self):
        config = long_term_config(1_000, num_domains=30, num_edges=2)
        assert config.num_domains == 30
        assert config.num_edges == 2

    def test_end_time(self):
        config = WorkloadConfig(
            total_requests=10, duration_s=100.0, num_domains=5, num_clients=5
        )
        assert config.end_time == config.start_time + 100.0


class TestBuiltDataset:
    def test_log_count_close_to_json_target(self, short_dataset):
        json_count = sum(1 for record in short_dataset.logs if record.is_json)
        target = short_dataset.config.total_requests
        assert abs(json_count - target) / target < 0.05

    def test_logs_sorted_by_time(self, short_dataset):
        times = [record.timestamp for record in short_dataset.logs]
        assert times == sorted(times)

    def test_logs_within_window(self, short_dataset):
        config = short_dataset.config
        for record in short_dataset.logs[:2000]:
            assert config.start_time <= record.timestamp < config.end_time + 1

    def test_epoch_is_2019(self, short_dataset):
        assert short_dataset.config.start_time == EPOCH_2019

    def test_reproducible(self):
        config = short_term_config(3_000, seed=77, num_domains=40)
        a = WorkloadBuilder(config).build()
        b = WorkloadBuilder(config).build()
        assert [r.to_dict() for r in a.logs] == [r.to_dict() for r in b.logs]

    def test_different_seeds_differ(self):
        a = WorkloadBuilder(short_term_config(2_000, seed=1, num_domains=30)).build()
        b = WorkloadBuilder(short_term_config(2_000, seed=2, num_domains=30)).build()
        assert [r.to_dict() for r in a.logs] != [r.to_dict() for r in b.logs]

    def test_edges_assigned_consistently(self, short_dataset):
        per_client = {}
        for record in short_dataset.logs:
            per_client.setdefault(record.client_ip_hash, set()).add(record.edge_id)
        # A client always lands on the same edge (hash affinity).
        assert all(len(edges) == 1 for edges in per_client.values())

    def test_multiple_edges_used(self, short_dataset):
        edges = {record.edge_id for record in short_dataset.logs}
        assert len(edges) == short_dataset.config.num_edges


class TestCalibrationMarginals:
    """The headline §4 marginals must land near the paper's values.

    Tolerances are loose — these are sampling-level checks; the
    benchmarks do the strict paper-vs-measured comparison.
    """

    def test_json_html_ratio(self, short_dataset):
        summary = summarize(short_dataset.logs)
        json_count = summary.content_types["application/json"]
        html_count = summary.content_types["text/html"]
        assert 2.5 < json_count / html_count < 8.0

    def test_get_fraction(self, short_json_logs):
        get = sum(1 for r in short_json_logs if r.method.value == "GET")
        assert abs(get / len(short_json_logs) - 0.84) < 0.06

    def test_uncacheable_fraction(self, short_json_logs):
        uncacheable = sum(1 for r in short_json_logs if not r.cacheable)
        assert abs(uncacheable / len(short_json_logs) - 0.55) < 0.12

    def test_periodic_fraction_ground_truth(self, long_dataset):
        fraction = long_dataset.ground_truth.periodic_fraction
        assert 0.04 < fraction < 0.09

    def test_ground_truth_flows_recorded(self, long_dataset):
        truth = long_dataset.ground_truth
        assert truth.periodic_specs
        assert truth.periodic_flows
        assert truth.periodic_request_count > 0

    def test_periodic_specs_on_canonical_grid(self, long_dataset):
        canonical = {30.0, 60.0, 120.0, 180.0, 600.0, 900.0, 1800.0}
        for spec in long_dataset.ground_truth.periodic_specs.values():
            assert spec.period_s in canonical


class TestEventsApi:
    def test_build_events_sorted(self):
        builder = WorkloadBuilder(short_term_config(2_000, seed=3, num_domains=30))
        events, truth = builder.build_events()
        times = [event.timestamp for event in events]
        assert times == sorted(times)
        assert truth.total_requests > 0

    def test_replay_matches_build(self):
        builder = WorkloadBuilder(short_term_config(2_000, seed=3, num_domains=30))
        events, _ = builder.build_events()
        served = builder.replay(events)
        assert len(served) == len(events)
        dataset = WorkloadBuilder(
            short_term_config(2_000, seed=3, num_domains=30)
        ).build()
        assert [s.log.to_dict() for s in served] == [
            r.to_dict() for r in dataset.logs
        ]
