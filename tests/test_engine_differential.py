"""Differential serial-vs-parallel harness for every engine pipeline.

The engine's headline guarantee is *exactness*: for any worker count,
backend, or shard split, the parallel pipelines produce results
identical — not approximately equal — to the serial reference
implementations.  These tests run both paths over one seeded
synthetic workload and compare outputs field by field.

The workload is the long-term shape (24 h, narrow client set): it is
the one with enough per-flow history for the periodicity detector
and the ngram split to produce non-trivial output, so equality here
is meaningful (several periodic objects, hundreds of evaluation
positions) rather than vacuous.
"""

from __future__ import annotations

import pytest

from repro.core.pipeline import (
    run_characterization,
    run_characterization_parallel,
    run_ngram_parallel,
    run_pattern_analysis,
    run_pattern_analysis_parallel,
    run_periodicity_parallel,
)
from repro.engine.flowstate import FlowCollectionState
from repro.ngram.evaluate import run_table3
from repro.periodicity.detector import DetectorConfig
from repro.periodicity.flows import extract_flows
from repro.periodicity.results import analyze_logs
from repro.synth.workload import WorkloadBuilder, long_term_config

#: Permutations are the detector's dominant cost; 10 keeps the suite
#: fast while remaining well above the workload's noise floor (the
#: seeded dataset's verdicts are stable from ~5 up).
DETECTOR = DetectorConfig(permutations=10)

GRID = [
    pytest.param(1, "thread", id="w1-thread"),
    pytest.param(2, "thread", id="w2-thread"),
    pytest.param(4, "thread", id="w4-thread"),
    pytest.param(1, "process", id="w1-process"),
    pytest.param(2, "process", id="w2-process"),
    pytest.param(4, "process", id="w4-process"),
]


@pytest.fixture(scope="module")
def logs():
    return WorkloadBuilder(long_term_config(8_000, seed=11)).build().logs


@pytest.fixture(scope="module")
def serial_characterization(logs):
    return run_characterization(logs)


@pytest.fixture(scope="module")
def serial_periodicity(logs):
    return analyze_logs(logs, detector_config=DETECTOR)


@pytest.fixture(scope="module")
def serial_ngram(logs):
    return run_table3(logs)


def assert_periodicity_identical(serial, parallel):
    """Field-by-field equality of two PeriodicityReports."""
    assert parallel.total_json_requests == serial.total_json_requests
    assert sorted(parallel.objects) == sorted(serial.objects)
    # Dataclass equality covers the detected period (all five floats),
    # its provenance, per-client verdicts, the periodic client list,
    # and every request/upload/uncacheable tally.
    for object_id, expected in serial.objects.items():
        assert parallel.objects[object_id] == expected, object_id
    assert parallel.period_histogram() == serial.period_histogram()
    assert parallel.share_cdf() == serial.share_cdf()
    assert parallel.periodic_request_count == serial.periodic_request_count


class TestCharacterizationDifferential:
    @pytest.mark.parametrize("workers,backend", GRID)
    def test_matches_serial(self, logs, serial_characterization, workers, backend):
        parallel = run_characterization_parallel(
            logs, workers=workers, backend=backend
        )
        serial = serial_characterization
        assert parallel.traffic_source == serial.traffic_source
        assert parallel.request_type == serial.request_type
        assert parallel.cacheability == serial.cacheability
        assert parallel.summary == serial.summary


class TestPeriodicityDifferential:
    @pytest.mark.parametrize("workers,backend", GRID)
    def test_matches_serial(self, logs, serial_periodicity, workers, backend):
        parallel = run_periodicity_parallel(
            logs, detector_config=DETECTOR, workers=workers, backend=backend
        )
        assert_periodicity_identical(serial_periodicity, parallel)

    def test_workload_is_not_vacuous(self, serial_periodicity):
        assert len(serial_periodicity.object_periods()) >= 3
        assert serial_periodicity.periodic_request_count > 0

    def test_shard_count_does_not_matter(self, logs, serial_periodicity):
        for num_shards in (3, 13):
            parallel = run_periodicity_parallel(
                logs,
                detector_config=DETECTOR,
                workers=2,
                backend="thread",
                num_shards=num_shards,
            )
            assert_periodicity_identical(serial_periodicity, parallel)

    def test_flow_state_matches_extract_flows(self, logs):
        """The map-stage state finalizes to the serial flow map exactly."""
        serial_flows = extract_flows(logs)
        # Fold in three interleaved chunks to exercise merge.
        chunks = [logs[0::3], logs[1::3], logs[2::3]]
        merged = FlowCollectionState().update(chunks[0])
        for chunk in chunks[1:]:
            merged = merged.merge(FlowCollectionState().update(chunk))
        parallel_flows = merged.finalize()
        assert sorted(parallel_flows) == sorted(serial_flows)
        for object_id, expected in serial_flows.items():
            flow = parallel_flows[object_id]
            assert sorted(flow.client_flows) == sorted(expected.client_flows)
            for client_id, expected_flow in expected.client_flows.items():
                actual = flow.client_flows[client_id]
                assert actual.timestamps.tolist() == expected_flow.timestamps.tolist()
                assert actual.upload_count == expected_flow.upload_count
                assert actual.uncacheable_count == expected_flow.uncacheable_count


class TestNgramDifferential:
    @pytest.mark.parametrize("workers,backend", GRID)
    def test_matches_serial(self, logs, serial_ngram, workers, backend):
        parallel = run_ngram_parallel(logs, workers=workers, backend=backend)
        # AccuracyResult is a frozen dataclass: this compares correct
        # and total hit counts per (n, k, clustered) cell, not just
        # the derived accuracies.
        assert parallel == serial_ngram

    def test_workload_is_not_vacuous(self, serial_ngram):
        assert all(result.total > 100 for result in serial_ngram.values())
        assert any(result.correct > 0 for result in serial_ngram.values())

    def test_shard_count_does_not_matter(self, logs, serial_ngram):
        for num_shards in (2, 9):
            parallel = run_ngram_parallel(
                logs, workers=2, backend="thread", num_shards=num_shards
            )
            assert parallel == serial_ngram


class TestPatternDifferential:
    def test_report_renders_identically(self, logs):
        serial = run_pattern_analysis(logs, detector_config=DETECTOR)
        parallel = run_pattern_analysis_parallel(
            logs, detector_config=DETECTOR, workers=2, backend="process"
        )
        assert parallel.render() == serial.render()
        assert parallel.ngram == serial.ngram
        assert_periodicity_identical(serial.periodicity, parallel.periodicity)
