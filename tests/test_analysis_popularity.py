"""Tests for repro.analysis.popularity."""

import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.popularity import HeavyHitters, ObjectPopularity, rank_objects
from tests.conftest import make_log


def logs_with_counts(spec):
    logs = []
    t = 0.0
    for url, count in spec.items():
        for _ in range(count):
            logs.append(make_log(timestamp=t, url=url))
            t += 1.0
    return logs


class TestObjectPopularity:
    @pytest.fixture
    def popularity(self):
        return rank_objects(
            logs_with_counts({"/a": 60, "/b": 25, "/c": 10, "/d": 5})
        )

    def test_counts(self, popularity):
        assert popularity.total == 100
        assert popularity.object_count == 4

    def test_top_share(self, popularity):
        assert popularity.top_share(0.25) == pytest.approx(0.60)
        assert popularity.top_share(0.50) == pytest.approx(0.85)
        assert popularity.top_share(1.0) == pytest.approx(1.0)

    def test_top_objects_filter(self, popularity):
        top = popularity.top_objects(0.25)
        assert len(top) == 1
        assert next(iter(top)).endswith("/a")

    def test_fraction_validated(self, popularity):
        with pytest.raises(ValueError):
            popularity.top_share(0.0)
        with pytest.raises(ValueError):
            popularity.top_objects(1.5)

    def test_concentration_curve_monotone(self, popularity):
        curve = popularity.concentration_curve()
        shares = [share for _, share in curve]
        assert shares == sorted(shares)

    def test_empty(self):
        empty = ObjectPopularity()
        assert empty.top_share(0.5) == 0.0

    def test_synthetic_dataset_is_concentrated(self, short_json_logs):
        popularity = rank_objects(short_json_logs)
        # Web-style skew: the top quarter of objects carries a clear
        # majority of requests.
        assert popularity.top_share(0.25) > 0.5


class TestHeavyHitters:
    def test_finds_dominant_key(self):
        summary = HeavyHitters(k=5)
        stream = ["hot"] * 500 + [f"cold-{i}" for i in range(400)]
        random.Random(1).shuffle(stream)
        for key in stream:
            summary.offer(key)
        hitters = dict(summary.hitters(min_fraction=0.2))
        assert "hot" in hitters

    def test_no_false_negatives_property(self):
        rng = random.Random(2)
        stream = (
            ["a"] * 300 + ["b"] * 200 + [f"x{i}" for i in range(500)]
        )
        rng.shuffle(stream)
        summary = HeavyHitters(k=9)  # threshold 1/10 of stream
        for key in stream:
            summary.offer(key)
        survivors = set(summary.candidates())
        # a (30%) and b (20%) both exceed 1/10 → must survive.
        assert {"a", "b"} <= survivors

    def test_memory_bounded(self):
        summary = HeavyHitters(k=10)
        for i in range(10_000):
            summary.offer(f"key-{i}")
        assert len(summary.candidates()) <= 10

    def test_error_bound(self):
        summary = HeavyHitters(k=9)
        for _ in range(1000):
            summary.offer("x")
        assert summary.error_bound == pytest.approx(100.0)
        assert summary.candidates()["x"] >= 1000 - summary.error_bound

    def test_offer_log(self):
        summary = HeavyHitters(k=3)
        summary.offer_log(make_log())
        assert summary.stream_length == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            HeavyHitters(k=0)
        summary = HeavyHitters(k=3)
        summary.offer("a")
        with pytest.raises(ValueError):
            summary.hitters(min_fraction=0.0)

    @given(
        st.lists(st.sampled_from("abcdefgh"), min_size=1, max_size=300),
        st.integers(min_value=2, max_value=10),
    )
    @settings(max_examples=60, deadline=None)
    def test_misra_gries_guarantee(self, stream, k):
        """Every key with frequency > n/(k+1) survives in the summary."""
        summary = HeavyHitters(k=k)
        for key in stream:
            summary.offer(key)
        exact = Counter(stream)
        threshold = len(stream) / (k + 1)
        survivors = set(summary.candidates())
        for key, count in exact.items():
            if count > threshold:
                assert key in survivors

    @given(st.lists(st.sampled_from("abcd"), min_size=1, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_estimates_never_overcount(self, stream):
        summary = HeavyHitters(k=3)
        for key in stream:
            summary.offer(key)
        exact = Counter(stream)
        for key, estimate in summary.candidates().items():
            assert estimate <= exact[key]
