"""Unit tests for repro.periodicity.detector."""

import numpy as np
import pytest

from repro.periodicity.detector import DetectedPeriod, DetectorConfig, PeriodDetector


@pytest.fixture(scope="module")
def detector():
    return PeriodDetector()


def timer_flow(period, count, jitter=0.3, seed=0, phase=0.0):
    rng = np.random.default_rng(seed)
    return np.sort(phase + np.arange(count) * period + rng.normal(0, jitter, count))


class TestDetection:
    @pytest.mark.parametrize("period", [30.0, 60.0, 120.0, 180.0])
    def test_short_canonical_periods(self, detector, period):
        flow = timer_flow(period, 40, seed=int(period))
        found = detector.detect(flow)
        assert found is not None
        assert abs(found.period_s - period) <= max(1.5, 0.05 * period)

    @pytest.mark.parametrize("period,count", [(600.0, 40), (900.0, 30), (1800.0, 16)])
    def test_long_canonical_periods(self, detector, period, count):
        flow = timer_flow(period, count, seed=int(period))
        found = detector.detect(flow)
        assert found is not None
        assert abs(found.period_s - period) <= max(2.0, 0.05 * period)

    def test_poisson_flow_rejected(self, detector):
        rng = np.random.default_rng(11)
        false_positives = 0
        for i in range(20):
            flow = np.sort(rng.uniform(0, 3600, 30))
            if detector.detect(flow) is not None:
                false_positives += 1
        assert false_positives <= 1

    def test_merged_multi_client_flow(self, detector):
        rng = np.random.default_rng(4)
        period = 60.0
        parts = [
            timer_flow(period, 30, seed=i, phase=rng.uniform(0, period))
            for i in range(6)
        ]
        merged = np.sort(np.concatenate(parts))
        found = detector.detect(merged)
        assert found is not None
        assert abs(found.period_s - period) <= 2.0

    def test_survives_dropped_polls(self, detector):
        rng = np.random.default_rng(5)
        flow = timer_flow(60.0, 60, seed=5)
        kept = flow[rng.random(flow.size) > 0.1]
        found = detector.detect(kept)
        assert found is not None
        assert abs(found.period_s - 60.0) <= 1.5

    def test_too_few_events_returns_none(self, detector):
        assert detector.detect(timer_flow(60.0, 5)) is None

    def test_empty_flow(self, detector):
        assert detector.detect(np.array([])) is None

    def test_deterministic(self, detector):
        flow = timer_flow(120.0, 40, seed=9)
        a = detector.detect(flow)
        b = detector.detect(flow)
        assert a.period_s == b.period_s


class TestThresholds:
    def test_thresholds_reported(self, detector):
        found = detector.detect(timer_flow(60.0, 40, seed=1))
        assert found.acf_value > found.acf_threshold
        assert found.spectral_power > found.power_threshold

    def test_more_permutations_tighter_or_similar(self):
        flow = timer_flow(60.0, 40, seed=2)
        small = PeriodDetector(DetectorConfig(permutations=10)).detect(flow)
        large = PeriodDetector(DetectorConfig(permutations=100)).detect(flow)
        assert small is not None and large is not None
        assert abs(small.period_s - large.period_s) <= 1.0

    def test_minimum_permutations_enforced(self):
        # x=2 is degenerate but must not crash.
        detector = PeriodDetector(DetectorConfig(permutations=2))
        assert detector.detect(timer_flow(60.0, 40, seed=3)) is not None


class TestPeriodMatching:
    def _detected(self, period):
        return DetectedPeriod(period, 0.9, 1.0, 0.1, 0.1)

    def test_exact_match(self):
        assert self._detected(60.0).matches(self._detected(60.0))

    def test_within_tolerance(self):
        assert self._detected(60.0).matches(self._detected(63.0), tolerance=0.10)

    def test_outside_tolerance(self):
        assert not self._detected(60.0).matches(self._detected(75.0), tolerance=0.10)

    def test_one_bin_floor_for_small_periods(self):
        # 2s vs 2.9s: within the 1-second floor.
        assert self._detected(2.0).matches(self._detected(2.9), tolerance=0.1)

    def test_none_does_not_match(self):
        assert not self._detected(60.0).matches(None)


class TestHarmonicsAndRefinement:
    def test_fundamental_not_harmonic(self, detector):
        """A 30s timer must be reported as 30, not 60/90/120."""
        for seed in range(3):
            flow = timer_flow(30.0, 60, seed=seed)
            found = detector.detect(flow)
            assert found is not None
            assert abs(found.period_s - 30.0) <= 1.5

    def test_long_flow_refinement_precision(self, detector):
        """Full-day coarse-binned flows refine to ~second accuracy."""
        flow = timer_flow(600.0, 140, jitter=0.4, seed=8)
        assert flow[-1] - flow[0] > 8 * 3600  # forces the coarse path
        found = detector.detect(flow)
        assert found is not None
        assert abs(found.period_s - 600.0) <= 3.0

    def test_densest_window_crop(self):
        config = DetectorConfig(max_bins=1024)
        detector = PeriodDetector(config)
        # 30s timer active only in [0, 1800); long silent tail after.
        active = timer_flow(30.0, 60, seed=10)
        stray = np.array([40_000.0, 50_000.0, 60_000.0, 70_000.0,
                          80_000.0, 85_000.0, 86_000.0, 86_400.0])
        flow = np.sort(np.concatenate([active, stray]))
        found = detector.detect(flow)
        assert found is not None
        assert abs(found.period_s - 30.0) <= 1.5
