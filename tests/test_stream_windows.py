"""Unit and property tests for the event-time windowing core.

The property tests pin the subsystem's late-data contract: any record
whose disorder stays within the watermark lag lands in exactly the
window its timestamp maps to, and any record beyond the lag is
*counted* in ``late_dropped`` — the conservation law
``records_in == records_windowed + late_dropped + resumed_skips``
holds for every tumbling *and sliding* input stream, so nothing is
ever silently lost.  Sliding windows additionally expose pane-level
``*_assignments`` counters, which must tie out against the sealed
accumulators' contents.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stream.windows import WatermarkClock, WindowManager, WindowSpec
from tests.conftest import make_log

BASE_TS = 1_559_347_200.0  # 2019-06-01T00:00:00Z, the corpus epoch


class CountingWindow:
    """Minimal accumulator: remembers its bounds and its timestamps."""

    def __init__(self, start: float, end: float) -> None:
        self.start = start
        self.end = end
        self.timestamps = []

    def ingest(self, record) -> None:
        self.timestamps.append(record.timestamp)


def make_manager(window_s=60.0, lag_s=0.0, slide_s=None, sources=1,
                 presealed=()):
    sealed = {}

    def on_seal(bounds, accumulator):
        assert bounds not in sealed, f"window {bounds} sealed twice"
        sealed[bounds] = accumulator

    manager = WindowManager(
        WindowSpec(window_s, slide_s),
        watermark_lag_s=lag_s,
        factory=CountingWindow,
        on_seal=on_seal,
        presealed=presealed,
        sources=sources,
    )
    return manager, sealed


class TestWindowSpec:
    def test_tumbling_assignment(self):
        spec = WindowSpec(60.0)
        assert spec.tumbling
        assert spec.assign(BASE_TS) == [(BASE_TS, BASE_TS + 60.0)]
        assert spec.assign(BASE_TS + 59.999) == [(BASE_TS, BASE_TS + 60.0)]
        assert spec.assign(BASE_TS + 60.0) == [
            (BASE_TS + 60.0, BASE_TS + 120.0)
        ]

    def test_sliding_assignment_contains_timestamp(self):
        spec = WindowSpec(300.0, slide_s=60.0)
        bounds = spec.assign(BASE_TS + 130.0)
        assert len(bounds) == 5  # window/slide panes
        for start, end in bounds:
            assert start <= BASE_TS + 130.0 < end
            assert end - start == 300.0
        assert bounds == sorted(bounds)  # earliest first

    def test_sliding_starts_are_slide_multiples(self):
        spec = WindowSpec(90.0, slide_s=30.0)
        for start, _ in spec.assign(12_345.0):
            assert math.isclose(start % 30.0, 0.0, abs_tol=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            WindowSpec(0.0)
        with pytest.raises(ValueError):
            WindowSpec(60.0, slide_s=0.0)
        with pytest.raises(ValueError):
            WindowSpec(60.0, slide_s=120.0)  # gaps would drop records


class TestWatermarkClock:
    def test_single_source_tracks_max_minus_lag(self):
        clock = WatermarkClock(lag_s=10.0)
        assert clock.value == float("-inf")
        assert clock.observe(100.0) == 90.0
        assert clock.observe(50.0) == 90.0  # disorder never regresses it
        assert clock.observe(200.0) == 190.0
        assert clock.max_event_time == 200.0

    def test_min_over_source_frontiers(self):
        clock = WatermarkClock(lag_s=0.0, sources=2)
        clock.observe(500.0, source=0)
        # Source 1 has produced nothing: watermark held at -inf.
        assert clock.value == float("-inf")
        assert clock.observe(90.0, source=1) == 90.0
        # The slow source governs, however far ahead the fast one runs.
        clock.observe(10_000.0, source=0)
        assert clock.value == 90.0

    def test_finished_source_releases_the_watermark(self):
        clock = WatermarkClock(lag_s=0.0, sources=2)
        clock.observe(500.0, source=0)
        assert clock.finish(source=1) == 500.0
        clock.finish(source=0)
        assert clock.value == 500.0  # rests at the overall max

    def test_validation(self):
        with pytest.raises(ValueError):
            WatermarkClock(lag_s=-1.0)
        with pytest.raises(ValueError):
            WatermarkClock(sources=0)


class TestWindowManager:
    def test_requires_factory(self):
        with pytest.raises(ValueError):
            WindowManager(WindowSpec(60.0))

    def test_in_order_stream_seals_in_window_order(self):
        manager, sealed = make_manager(window_s=60.0)
        for offset in (0.0, 30.0, 61.0, 125.0):
            manager.process(make_log(timestamp=BASE_TS + offset))
        manager.flush()
        ends = [bounds[1] for bounds in sealed]
        assert ends == sorted(ends)
        assert manager.sealed_windows == 3
        assert manager.records_windowed == 4
        assert manager.late_dropped == 0

    def test_disorder_within_lag_is_not_late(self):
        manager, sealed = make_manager(window_s=60.0, lag_s=30.0)
        manager.process(make_log(timestamp=BASE_TS + 80.0))
        # 25s older than the max: within the 30s budget, window 0 open.
        manager.process(make_log(timestamp=BASE_TS + 55.0))
        manager.flush()
        assert manager.late_dropped == 0
        first = sealed[(BASE_TS, BASE_TS + 60.0)]
        assert first.timestamps == [BASE_TS + 55.0]

    def test_beyond_lag_record_is_counted_late(self):
        manager, sealed = make_manager(window_s=60.0, lag_s=30.0)
        # Watermark reaches 70s: the first window's end (60s) is passed
        # and sealed, even though no record ever landed in it.
        manager.process(make_log(timestamp=BASE_TS + 100.0))
        assert manager.seal_horizon >= BASE_TS + 60.0
        manager.process(make_log(timestamp=BASE_TS + 10.0))  # 90s behind
        manager.flush()
        assert manager.late_dropped == 1
        assert manager.records_windowed == 1
        assert (BASE_TS, BASE_TS + 60.0) not in sealed  # never materialized

    def test_presealed_windows_count_resumed_skips_not_late(self):
        presealed = [(BASE_TS, BASE_TS + 60.0)]
        manager, sealed = make_manager(window_s=60.0, presealed=presealed)
        manager.process(make_log(timestamp=BASE_TS + 30.0))
        manager.process(make_log(timestamp=BASE_TS + 90.0))
        manager.flush()
        assert manager.resumed_skips == 1
        assert manager.late_dropped == 0
        assert manager.records_windowed == 1
        assert (BASE_TS, BASE_TS + 60.0) not in sealed

    def test_per_source_frontier_protects_slow_source(self):
        # Source 0 races a full window ahead; source 1's old records
        # must still be accepted because its own frontier governs.
        manager, sealed = make_manager(window_s=60.0, lag_s=0.0, sources=2)
        manager.process(make_log(timestamp=BASE_TS + 500.0), source=0)
        manager.process(make_log(timestamp=BASE_TS + 5.0), source=1)
        assert manager.late_dropped == 0
        manager.finish_source(1)
        manager.finish_source(0)
        manager.flush()
        assert manager.late_dropped == 0
        assert sealed[(BASE_TS, BASE_TS + 60.0)].timestamps == [BASE_TS + 5.0]

    def test_sliding_panes_share_records(self):
        manager, sealed = make_manager(window_s=120.0, slide_s=60.0)
        manager.process(make_log(timestamp=BASE_TS + 70.0))
        manager.flush()
        panes = [
            bounds for bounds, window in sealed.items() if window.timestamps
        ]
        assert len(panes) == 2
        for start, end in panes:
            assert start <= BASE_TS + 70.0 < end

    def test_sliding_partial_late_counts_once(self):
        """Regression: a record late for one pane but accepted in
        another must count as windowed, not as windowed AND late.

        The exact repro from the bug report: window 10s / slide 5s,
        lag 6s, timestamps [0, 5, 12, 20, 9].  After ts=20 the
        watermark is 14, sealing pane (0, 10); ts=9 is late for that
        pane but still lands in the open pane (5, 15).  The broken
        accounting produced windowed + late == 6 for 5 records in.
        """
        manager, _ = make_manager(window_s=10.0, lag_s=6.0, slide_s=5.0)
        for offset in (0.0, 5.0, 12.0, 20.0, 9.0):
            manager.process(make_log(timestamp=BASE_TS + offset))
        manager.flush()
        assert manager.records_in == 5
        assert (
            manager.records_windowed
            + manager.late_dropped
            + manager.resumed_skips
            == 5
        )
        assert manager.records_windowed == 5
        assert manager.late_dropped == 0
        # The pane-level miss stays observable:
        assert manager.late_assignments == 1

    def test_assignment_counters_cover_every_pane(self):
        manager, sealed = make_manager(window_s=120.0, slide_s=60.0)
        for offset in (70.0, 130.0):
            manager.process(make_log(timestamp=BASE_TS + offset))
        manager.flush()
        assert manager.accepted_assignments == 4  # 2 records x 2 panes
        accepted = sum(len(window.timestamps) for window in sealed.values())
        assert accepted == manager.accepted_assignments

    def test_fully_late_sliding_record_counts_late_once(self):
        manager, _ = make_manager(window_s=10.0, lag_s=0.0, slide_s=5.0)
        manager.process(make_log(timestamp=BASE_TS + 40.0))
        # Both panes containing ts=2 ((-5, 5) and (0, 10)) are sealed.
        manager.process(make_log(timestamp=BASE_TS + 2.0))
        manager.flush()
        assert manager.late_dropped == 1
        assert manager.late_assignments == 2
        assert manager.records_windowed == 1


# -- property tests ------------------------------------------------------

offsets_within_lag = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=3_600.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=29.9, allow_nan=False),
    ),
    min_size=1,
    max_size=60,
)


@given(offsets_within_lag)
@settings(max_examples=60, deadline=None)
def test_disorder_within_lag_lands_in_the_correct_window(pairs):
    """Arrival = event time + delay < lag ⇒ never late, right window."""
    spec = WindowSpec(60.0)
    manager, sealed = make_manager(window_s=60.0, lag_s=30.0)
    arrivals = sorted(
        (event + delay, event) for event, delay in pairs
    )
    for _, event in arrivals:
        manager.process(make_log(timestamp=BASE_TS + event))
    manager.flush()
    assert manager.late_dropped == 0
    assert manager.records_windowed == len(pairs)
    for bounds, window in sealed.items():
        for timestamp in window.timestamps:
            assert spec.assign(timestamp) == [bounds]


@given(
    st.lists(
        st.floats(min_value=0.0, max_value=7_200.0, allow_nan=False),
        min_size=1,
        max_size=80,
    ),
    st.floats(min_value=0.0, max_value=120.0, allow_nan=False),
)
@settings(max_examples=60, deadline=None)
def test_conservation_no_record_is_silently_lost(events, lag):
    """windowed + late + resumed == total, for any stream and lag."""
    presealed = [(BASE_TS, BASE_TS + 60.0)]
    manager, sealed = make_manager(
        window_s=60.0, lag_s=lag, presealed=presealed
    )
    for event in events:
        manager.process(make_log(timestamp=BASE_TS + event))
    manager.flush()
    assert (
        manager.records_windowed
        + manager.late_dropped
        + manager.resumed_skips
        == len(events)
    )
    accepted = sum(len(window.timestamps) for window in sealed.values())
    assert accepted == manager.records_windowed


@given(
    st.lists(
        st.floats(min_value=0.0, max_value=7_200.0, allow_nan=False),
        min_size=1,
        max_size=80,
    ),
    st.floats(min_value=0.0, max_value=120.0, allow_nan=False),
    st.sampled_from([5.0, 10.0, 30.0, 60.0]),
)
@settings(max_examples=60, deadline=None)
def test_conservation_holds_for_sliding_windows(events, lag, slide):
    """The conservation law for sliding specs, where one record can be
    late for some panes and accepted in others (the historical
    double-count).  Exactly one per-record bucket per record, and the
    pane-level counters tie out against the sealed accumulators."""
    presealed = [(BASE_TS, BASE_TS + 60.0)]
    manager, sealed = make_manager(
        window_s=60.0, lag_s=lag, slide_s=slide, presealed=presealed
    )
    for event in events:
        manager.process(make_log(timestamp=BASE_TS + event))
    manager.flush()
    assert (
        manager.records_windowed
        + manager.late_dropped
        + manager.resumed_skips
        == len(events)
    )
    accepted = sum(len(window.timestamps) for window in sealed.values())
    assert accepted == manager.accepted_assignments
    panes_per_record = math.ceil(60.0 / slide)
    assert (
        manager.accepted_assignments
        + manager.late_assignments
        + manager.resumed_assignments
        == len(events) * panes_per_record
    )


@given(
    st.lists(
        st.floats(min_value=130.0, max_value=3_600.0, allow_nan=False),
        min_size=1,
        max_size=40,
    )
)
@settings(max_examples=40, deadline=None)
def test_beyond_lag_records_always_hit_the_late_counter(advancers):
    """After the watermark passes a window, its stragglers are counted."""
    manager, _ = make_manager(window_s=60.0, lag_s=30.0)
    for event in advancers:
        manager.process(make_log(timestamp=BASE_TS + event))
    # Window (BASE_TS, BASE_TS+60) is sealed: min(advancers) >= 130 so
    # the watermark is at least 100 > 60.
    before = manager.late_dropped
    manager.process(make_log(timestamp=BASE_TS + 1.0))
    assert manager.late_dropped == before + 1
    manager.flush()
    assert (
        manager.records_windowed + manager.late_dropped
        == len(advancers) + 1
    )
