"""Unit tests for repro.logs.merge."""

import pytest

from repro.logs.io import read_logs, write_logs
from repro.logs.merge import (
    is_time_ordered,
    merge_files,
    merge_sorted,
    split_by_edge,
)
from tests.conftest import make_log


def edge_stream(edge_id, timestamps):
    return [make_log(timestamp=float(t), edge_id=edge_id) for t in timestamps]


class TestMergeSorted:
    def test_two_streams_interleave(self):
        a = edge_stream("edge-a", [1, 3, 5])
        b = edge_stream("edge-b", [2, 4, 6])
        merged = list(merge_sorted([a, b]))
        assert [record.timestamp for record in merged] == [1, 2, 3, 4, 5, 6]

    def test_ties_keep_stream_order(self):
        a = edge_stream("edge-a", [1.0])
        b = edge_stream("edge-b", [1.0])
        merged = list(merge_sorted([a, b]))
        assert [record.edge_id for record in merged] == ["edge-a", "edge-b"]

    def test_empty_streams(self):
        assert list(merge_sorted([])) == []
        assert list(merge_sorted([[], edge_stream("e", [1])])) != []

    def test_single_stream_passthrough(self):
        a = edge_stream("edge-a", [1, 2, 3])
        assert list(merge_sorted([a])) == a

    def test_many_streams(self):
        streams = [edge_stream(f"edge-{i}", range(i, 100, 7)) for i in range(7)]
        merged = list(merge_sorted(streams))
        assert is_time_ordered(merged)
        assert len(merged) == sum(len(s) for s in streams)

    def test_lazy(self):
        a = iter(edge_stream("edge-a", [1, 2]))
        merged = merge_sorted([a])
        assert next(merged).timestamp == 1


class TestMergeFiles:
    def test_round_trip(self, tmp_path):
        paths = []
        for edge in range(3):
            path = tmp_path / f"edge-{edge}.jsonl"
            write_logs(edge_stream(f"edge-{edge}", range(edge, 30, 3)), path)
            paths.append(path)
        out = tmp_path / "merged.jsonl.gz"
        count = merge_files(paths, out)
        merged = list(read_logs(out))
        assert count == len(merged) == 30
        assert is_time_ordered(merged)


class TestSplitByEdge:
    def test_partition(self):
        logs = edge_stream("edge-a", [1, 2]) + edge_stream("edge-b", [3])
        parts = split_by_edge(logs)
        assert set(parts) == {"edge-a", "edge-b"}
        assert len(parts["edge-a"]) == 2

    def test_split_then_merge_identity(self, short_dataset):
        sample = short_dataset.logs[:2000]
        parts = split_by_edge(sample)
        merged = list(merge_sorted(list(parts.values())))
        assert sorted(r.timestamp for r in merged) == [
            r.timestamp for r in merged
        ]
        assert len(merged) == len(sample)


class TestIsTimeOrdered:
    def test_ordered(self):
        assert is_time_ordered(edge_stream("e", [1, 2, 2, 3]))

    def test_unordered(self):
        assert not is_time_ordered(edge_stream("e", [2, 1]))

    def test_empty(self):
        assert is_time_ordered([])
