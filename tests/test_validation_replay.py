"""Tests for repro.synth.validation and repro.cdn.replay."""

import pytest

from repro.cdn.replay import ReplayPolicy, WhatIfReplayer
from repro.logs.record import CacheStatus
from repro.synth.calibration import PaperTargets
from repro.synth.validation import CalibrationCheck, validate_dataset
from tests.conftest import make_log


class TestCalibrationCheck:
    def test_pass_within_tolerance(self):
        check = CalibrationCheck("x", 0.5, 0.52, 0.05)
        assert check.passed
        assert check.deviation == pytest.approx(0.02)

    def test_fail_outside_tolerance(self):
        check = CalibrationCheck("x", 0.5, 0.6, 0.05)
        assert not check.passed
        assert "FAIL" in check.render()

    def test_render_contains_values(self):
        text = CalibrationCheck("mobile share", 0.55, 0.54, 0.05).render()
        assert "mobile share" in text
        assert "0.550" in text and "0.540" in text


class TestValidateDataset:
    def test_default_dataset_passes(self, short_dataset):
        report = validate_dataset(short_dataset)
        assert report.passed, report.render()

    def test_report_covers_core_marginals(self, short_dataset):
        report = validate_dataset(short_dataset)
        names = {check.name for check in report.checks}
        for required in (
            "device share: mobile",
            "GET fraction",
            "uncacheable JSON fraction",
            "planted periodic fraction",
        ):
            assert required in names

    def test_wrong_targets_fail(self, short_dataset):
        skewed = PaperTargets(
            device_mix={
                "mobile": 0.10,
                "embedded": 0.50,
                "desktop": 0.20,
                "unknown": 0.20,
            }
        )
        report = validate_dataset(short_dataset, targets=skewed)
        assert not report.passed
        assert report.failures

    def test_render_has_summary_line(self, short_dataset):
        text = validate_dataset(short_dataset).render()
        assert "calibration checks passed" in text


class TestReplayPolicy:
    def test_validates_ttl(self):
        with pytest.raises(ValueError):
            ReplayPolicy("x", ttl_seconds=0.0)

    def test_validates_edges(self):
        with pytest.raises(ValueError):
            ReplayPolicy("x", ttl_seconds=60.0, num_edges=0)


def trace(url, client, times, cacheable=True, size=1000):
    status = CacheStatus.MISS if cacheable else CacheStatus.NO_STORE
    return [
        make_log(
            timestamp=float(t),
            url=url,
            client_ip_hash=client,
            cache_status=status,
            ttl_seconds=300.0 if cacheable else None,
            response_bytes=size,
        )
        for t in times
    ]


class TestWhatIfReplayer:
    def test_repeat_requests_hit_within_ttl(self):
        replayer = WhatIfReplayer(trace("/api/v1/a", "c1", [0, 10, 20]))
        outcome = replayer.replay(ReplayPolicy("t", ttl_seconds=60.0))
        assert outcome.misses == 1
        assert outcome.hits == 2

    def test_ttl_expiry_causes_refetch(self):
        replayer = WhatIfReplayer(trace("/api/v1/a", "c1", [0, 100, 200]))
        outcome = replayer.replay(ReplayPolicy("t", ttl_seconds=50.0))
        assert outcome.misses == 3
        assert outcome.hits == 0

    def test_uncacheable_objects_always_origin(self):
        replayer = WhatIfReplayer(
            trace("/api/v1/t", "c1", [0, 1, 2], cacheable=False)
        )
        outcome = replayer.replay(ReplayPolicy("t", ttl_seconds=60.0))
        assert outcome.no_store == 3
        assert outcome.hit_ratio == 0.0
        assert outcome.origin_fraction == 1.0

    def test_object_cacheable_if_ever_cacheable_in_trace(self):
        logs = trace("/api/v1/a", "c1", [0], cacheable=False) + trace(
            "/api/v1/a", "c1", [10, 20], cacheable=True
        )
        replayer = WhatIfReplayer(logs)
        assert replayer.cacheable_share() == 1.0

    def test_longer_ttl_never_hurts_hit_ratio(self, long_dataset):
        replayer = WhatIfReplayer(long_dataset.logs)
        outcomes = replayer.ttl_sweep([30.0, 300.0, 3600.0])
        ratios = [outcome.hit_ratio for outcome in outcomes]
        assert ratios == sorted(ratios)

    def test_more_edges_dilute_locality(self, long_dataset):
        replayer = WhatIfReplayer(long_dataset.logs)
        one = replayer.replay(ReplayPolicy("one", 300.0, num_edges=1))
        many = replayer.replay(ReplayPolicy("many", 300.0, num_edges=8))
        assert many.hit_ratio <= one.hit_ratio + 1e-9

    def test_origin_bytes_accounted(self):
        replayer = WhatIfReplayer(
            trace("/api/v1/a", "c1", [0, 10], size=500)
        )
        outcome = replayer.replay(ReplayPolicy("t", ttl_seconds=60.0))
        assert outcome.origin_bytes == 500  # one miss only

    def test_json_filter_default(self):
        logs = trace("/api/v1/a", "c1", [0]) + [
            make_log(timestamp=1.0, mime_type="text/html", url="/page")
        ]
        replayer = WhatIfReplayer(logs)
        assert replayer.trace_length == 1

    def test_small_cache_evicts(self):
        logs = []
        for i in range(50):
            logs += trace(f"/api/v1/obj{i}", "c1", [i, i + 1000], size=4000)
        replayer = WhatIfReplayer(sorted(logs, key=lambda r: r.timestamp))
        big = replayer.replay(
            ReplayPolicy("big", ttl_seconds=1e6, cache_capacity_bytes=1 << 20)
        )
        tiny = replayer.replay(
            ReplayPolicy("tiny", ttl_seconds=1e6, cache_capacity_bytes=8_192)
        )
        assert tiny.hit_ratio < big.hit_ratio
