"""Unit tests for repro.ngram.evaluate."""

import pytest

from repro.logs.record import HttpMethod
from repro.ngram.evaluate import (
    build_client_sequences,
    evaluate_topk,
    run_table3,
    split_clients,
)
from repro.ngram.model import BackoffNgramModel
from tests.conftest import make_log


class TestBuildSequences:
    def test_sequences_time_ordered(self):
        logs = [
            make_log(timestamp=3.0, url="/api/v1/c"),
            make_log(timestamp=1.0, url="/api/v1/a"),
            make_log(timestamp=2.0, url="/api/v1/b"),
        ]
        sequences = build_client_sequences(logs)
        flow = next(iter(sequences.values()))
        assert [token.split("/")[-1] for token in flow] == ["a", "b", "c"]

    def test_split_by_client(self):
        logs = [
            make_log(client_ip_hash="c1", url="/api/v1/a"),
            make_log(client_ip_hash="c2", url="/api/v1/b"),
        ]
        assert len(build_client_sequences(logs)) == 2

    def test_json_only_by_default(self):
        logs = [
            make_log(url="/api/v1/a"),
            make_log(url="/page", mime_type="text/html"),
        ]
        sequences = build_client_sequences(logs)
        flow = next(iter(sequences.values()))
        assert len(flow) == 1

    def test_tokens_include_domain(self):
        logs = [make_log(domain="d.example.com", url="/api/v1/a")]
        flow = next(iter(build_client_sequences(logs).values()))
        assert flow[0] == "d.example.com/api/v1/a"

    def test_clustered_tokens(self):
        logs = [make_log(url="/api/v1/item/42")]
        flow = next(iter(build_client_sequences(logs, clustered=True).values()))
        assert flow[0].endswith("/api/v1/item/<num>")


class TestSplitClients:
    def test_partition_complete(self):
        clients = [f"client-{i}" for i in range(1000)]
        train, test = split_clients(clients, test_fraction=0.25, seed=1)
        assert sorted(train + test) == sorted(clients)

    def test_fraction_respected(self):
        clients = [f"client-{i}" for i in range(4000)]
        _, test = split_clients(clients, test_fraction=0.25, seed=1)
        assert abs(len(test) / 4000 - 0.25) < 0.03

    def test_deterministic(self):
        clients = [f"client-{i}" for i in range(100)]
        assert split_clients(clients, seed=5) == split_clients(clients, seed=5)

    def test_seed_changes_split(self):
        clients = [f"client-{i}" for i in range(500)]
        assert split_clients(clients, seed=1) != split_clients(clients, seed=2)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            split_clients(["a"], test_fraction=0.0)


class TestEvaluateTopk:
    def test_perfectly_predictable_flow(self):
        model = BackoffNgramModel(order=1)
        model.fit([["a", "b", "c"]] * 10)
        results = evaluate_topk(model, [["a", "b", "c"]], n=1, ks=[1])
        assert results[0].accuracy == 1.0

    def test_unpredictable_flow(self):
        model = BackoffNgramModel(order=1)
        model.fit([["a", "b"]])
        results = evaluate_topk(model, [["a", "z"]], n=1, ks=[1])
        assert results[0].accuracy == 0.0

    def test_accuracy_monotone_in_k(self):
        model = BackoffNgramModel(order=1)
        model.fit([["a", "b"], ["a", "c"], ["a", "d"]])
        results = evaluate_topk(
            model, [["a", "b"], ["a", "c"], ["a", "d"]], n=1, ks=[1, 2, 3]
        )
        accuracies = [result.accuracy for result in results]
        assert accuracies == sorted(accuracies)

    def test_counts_reported(self):
        model = BackoffNgramModel(order=1)
        model.fit([["a", "b", "c"]])
        result = evaluate_topk(model, [["a", "b", "c"]], n=1, ks=[1])[0]
        assert result.total == 2
        assert result.correct == 2
        assert result.n == 1 and result.k == 1


class TestRunTable3:
    def test_produces_all_cells(self, long_json_logs):
        results = run_table3(long_json_logs[:5000], ns=(1,), ks=(1, 5))
        assert set(results) == {
            (1, 1, False),
            (1, 5, False),
            (1, 1, True),
            (1, 5, True),
        }

    def test_clustered_beats_actual(self, long_json_logs):
        results = run_table3(long_json_logs, ns=(1,), ks=(1, 10))
        for k in (1, 10):
            assert (
                results[(1, k, True)].accuracy
                >= results[(1, k, False)].accuracy - 0.02
            )

    def test_k10_beats_k1(self, long_json_logs):
        results = run_table3(long_json_logs, ns=(1,), ks=(1, 10))
        assert results[(1, 10, False)].accuracy > results[(1, 1, False)].accuracy
