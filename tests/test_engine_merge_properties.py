"""Merge-algebra properties of every mergeable engine state.

The executor folds shard states in plan order, but the *plan* itself
varies: worker counts change shard counts, directory layouts change
record groupings, and checkpoint resume replays arbitrary prefixes.
So each mergeable state must behave like a commutative monoid over
its ingest stream: merging in any order, any grouping, with empty
states interleaved, must yield the same value — and the value must
survive pickling, because the process backend ships states between
interpreters.

These are property tests in the stdlib: a seeded ``random.Random``
drives many trials of randomized stream splits, and states compare
via their canonical (order-independent) projections.

Exactness boundaries are part of the contract and are pinned here
too: ``TopK`` is only split-invariant while its key set fits in
capacity, and ``ReservoirSample`` only while the stream fits in the
reservoir — the trials stay inside those regimes, and the states
whose pipelines *require* exactness (flows, ngram, characterization
counters) are exercised without any such caveat.
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro.engine.flowstate import FlowCollectionState, PeriodicityDetectionState
from repro.engine.ngramstate import NgramEvalState, NgramSequenceState
from repro.engine.sketches import (
    CountMinSketch,
    HyperLogLog,
    ReservoirSample,
    TopK,
    UniqueCounter,
)
from repro.engine.state import CharacterizationState
from repro.periodicity.flows import FlowFilter
from repro.periodicity.results import ObjectPeriodicity
from repro.ngram.model import BackoffNgramModel
from repro.synth.workload import WorkloadBuilder, short_term_config

TRIALS = 20


@pytest.fixture(scope="module")
def records():
    return WorkloadBuilder(short_term_config(2_000, seed=7)).build().logs


def random_split(items, rng, parts):
    """Assign each item to one of ``parts`` buckets at random."""
    buckets = [[] for _ in range(parts)]
    for item in items:
        buckets[rng.randrange(parts)].append(item)
    return buckets


def roundtrip(state):
    return pickle.loads(pickle.dumps(state))


class MergeAlgebra:
    """Shared property checks; subclasses supply the state algebra.

    Required hooks: ``make()`` builds an empty state, ``ingest(state,
    item)`` folds one item, ``canonical(state)`` projects to an
    order-independent comparable value, ``stream(rng)`` yields one
    trial's items.
    """

    parts = 3

    def make(self):
        raise NotImplementedError

    def ingest(self, state, item):
        raise NotImplementedError

    def canonical(self, state):
        raise NotImplementedError

    def stream(self, rng):
        raise NotImplementedError

    # -- helpers ----------------------------------------------------------

    def build(self, items):
        state = self.make()
        for item in items:
            self.ingest(state, item)
        return state

    def reference(self, items):
        return self.canonical(self.build(items))

    # -- properties -------------------------------------------------------

    def test_commutative(self):
        rng = random.Random(101)
        for _ in range(TRIALS):
            items = self.stream(rng)
            left, right = random_split(items, rng, 2)
            ab = self.build(left).merge(self.build(right))
            ba = self.build(right).merge(self.build(left))
            assert self.canonical(ab) == self.canonical(ba)

    def test_associative(self):
        rng = random.Random(202)
        for _ in range(TRIALS):
            items = self.stream(rng)
            a, b, c = random_split(items, rng, 3)
            left = self.build(a).merge(self.build(b)).merge(self.build(c))
            right = self.build(a).merge(self.build(b).merge(self.build(c)))
            assert self.canonical(left) == self.canonical(right)

    def test_identity(self):
        rng = random.Random(303)
        items = self.stream(rng)
        expected = self.reference(items)
        assert self.canonical(self.build(items).merge(self.make())) == expected
        assert self.canonical(self.make().merge(self.build(items))) == expected

    def test_split_invariant(self):
        """Any shard split folds back to the unsplit stream's state."""
        rng = random.Random(404)
        for _ in range(TRIALS):
            items = self.stream(rng)
            expected = self.reference(items)
            parts = random_split(items, rng, rng.randrange(2, 6))
            merged = self.make()
            for part in parts:
                merged = merged.merge(self.build(part))
            assert self.canonical(merged) == expected

    def test_pickle_roundtrip(self):
        """States survive the process boundary, before and after merge."""
        rng = random.Random(505)
        items = self.stream(rng)
        state = self.build(items)
        assert self.canonical(roundtrip(state)) == self.canonical(state)
        left, right = random_split(items, rng, 2)
        merged = roundtrip(self.build(left)).merge(roundtrip(self.build(right)))
        assert self.canonical(merged) == self.reference(items)


# -- sketches -----------------------------------------------------------------


class TestHyperLogLogAlgebra(MergeAlgebra):
    def make(self):
        return HyperLogLog(precision=10)

    def ingest(self, state, item):
        state.add(item)

    def canonical(self, state):
        return bytes(state.registers)

    def stream(self, rng):
        return [f"client-{rng.randrange(500)}" for _ in range(rng.randrange(5, 120))]


class TestUniqueCounterAlgebra(MergeAlgebra):
    def make(self):
        return UniqueCounter(exact_threshold=1_000)

    def ingest(self, state, item):
        state.add(item)

    def canonical(self, state):
        if state.is_exact:
            return ("exact", frozenset(state.exact))
        return ("sketch", bytes(state.sketch.registers))

    def stream(self, rng):
        return [f"client-{rng.randrange(300)}" for _ in range(rng.randrange(5, 120))]


class TestSpilledUniqueCounterAlgebra(TestUniqueCounterAlgebra):
    """The hybrid counter past its exact threshold (sketch mode)."""

    def make(self):
        return UniqueCounter(exact_threshold=8, precision=10)


class TestCountMinAlgebra(MergeAlgebra):
    def make(self):
        return CountMinSketch(width=64, depth=3)

    def ingest(self, state, item):
        key, count = item
        state.add(key, count)

    def canonical(self, state):
        return (tuple(tuple(row) for row in state.rows), state.total)

    def stream(self, rng):
        return [
            (f"url-{rng.randrange(50)}", rng.randrange(1, 6))
            for _ in range(rng.randrange(5, 120))
        ]


class TestTopKAlgebra(MergeAlgebra):
    """Exact while the key universe fits in capacity (it does here)."""

    def make(self):
        return TopK(capacity=64)

    def ingest(self, state, item):
        key, count = item
        state.add(key, count)

    def canonical(self, state):
        return (dict(state.counts), dict(state.errors), state.total)

    def stream(self, rng):
        return [
            (f"url-{rng.randrange(40)}", rng.randrange(1, 6))
            for _ in range(rng.randrange(5, 120))
        ]


class TestReservoirAlgebra(MergeAlgebra):
    """Exact (pure concatenation) while the stream fits the reservoir."""

    def make(self):
        return ReservoirSample(capacity=256, seed=0)

    def ingest(self, state, item):
        state.add(item)

    def canonical(self, state):
        return (sorted(state.items), state.count)

    def stream(self, rng):
        return [float(rng.randrange(10_000)) for _ in range(rng.randrange(5, 60))]


# -- pipeline states ----------------------------------------------------------


class RecordAlgebra(MergeAlgebra):
    """Record-ingesting states draw trial streams from one dataset."""

    @pytest.fixture(autouse=True)
    def _bind_records(self, records):
        self.records = records

    def stream(self, rng):
        count = rng.randrange(50, 400)
        start = rng.randrange(len(self.records) - count)
        return self.records[start : start + count]


class TestFlowCollectionAlgebra(RecordAlgebra):
    def make(self):
        return FlowCollectionState()

    def ingest(self, state, record):
        state.ingest(record)

    def canonical(self, state):
        return state.canonical()

    def test_finalize_split_invariant(self, records):
        """finalize() itself — filters applied post-merge — is exact."""
        rng = random.Random(606)
        whole = FlowCollectionState().update(records)
        expected = {
            object_id: sorted(flow.client_flows)
            for object_id, flow in whole.finalize().items()
        }
        for _ in range(5):
            merged = FlowCollectionState()
            for part in random_split(records, rng, 4):
                merged = merged.merge(FlowCollectionState().update(part))
            actual = {
                object_id: sorted(flow.client_flows)
                for object_id, flow in merged.finalize().items()
            }
            assert actual == expected

    def test_mismatched_filters_rejected(self):
        strict = FlowCollectionState(FlowFilter(min_requests_per_client_flow=99))
        with pytest.raises(ValueError, match="different filters"):
            FlowCollectionState().merge(strict)


class TestNgramSequenceAlgebra(RecordAlgebra):
    def make(self):
        return NgramSequenceState()

    def ingest(self, state, record):
        state.ingest(record)

    def canonical(self, state):
        return state.canonical()

    def test_sequences_split_invariant(self, records):
        rng = random.Random(707)
        expected = {
            clustered: NgramSequenceState().update(records).sequences(clustered)
            for clustered in (False, True)
        }
        for _ in range(5):
            merged = NgramSequenceState()
            for part in random_split(records, rng, 4):
                merged = merged.merge(NgramSequenceState().update(part))
            for clustered in (False, True):
                assert merged.sequences(clustered) == expected[clustered]

    def test_mismatched_settings_rejected(self):
        other = NgramSequenceState(json_only=False)
        with pytest.raises(ValueError, match="different settings"):
            NgramSequenceState().merge(other)


class TestNgramModelAlgebra(MergeAlgebra):
    def make(self):
        return BackoffNgramModel(order=2)

    def ingest(self, state, sequence):
        state.add_sequence(sequence)

    def canonical(self, state):
        return (
            {history: dict(counts) for history, counts in state._transitions.items()},
            dict(state._totals),
            state.trained_sequences,
            state.trained_tokens,
        )

    def stream(self, rng):
        vocabulary = [f"/api/{index}" for index in range(12)]
        return [
            [rng.choice(vocabulary) for _ in range(rng.randrange(2, 15))]
            for _ in range(rng.randrange(1, 12))
        ]

    def test_merged_predicts_like_fit_on_all(self):
        rng = random.Random(808)
        for _ in range(5):
            sequences = self.stream(rng)
            left, right = random_split(sequences, rng, 2)
            merged = self.build(left).merge(self.build(right))
            whole = self.build(sequences)
            for sequence in sequences:
                for position in range(1, len(sequence)):
                    history = sequence[max(0, position - 2) : position]
                    assert merged.scored_predictions(history, k=5) == (
                        whole.scored_predictions(history, k=5)
                    )

    def test_mismatched_order_rejected(self):
        with pytest.raises(ValueError, match="order"):
            BackoffNgramModel(order=1).merge(BackoffNgramModel(order=2))

    def test_mismatched_discount_rejected(self):
        with pytest.raises(ValueError, match="discount"):
            BackoffNgramModel(backoff_discount=0.4).merge(
                BackoffNgramModel(backoff_discount=0.5)
            )


class TestNgramEvalAlgebra(MergeAlgebra):
    def make(self):
        return NgramEvalState()

    def ingest(self, state, item):
        n, k, correct, total = item
        state.record(n, k, correct, total)

    def canonical(self, state):
        return state.canonical()

    def stream(self, rng):
        return [
            (rng.randrange(1, 3), rng.choice((1, 5, 10)), rng.randrange(8), 8)
            for _ in range(rng.randrange(1, 40))
        ]


class TestCharacterizationAlgebra(RecordAlgebra):
    def make(self):
        return CharacterizationState()

    def ingest(self, state, record):
        state.ingest(record)

    def canonical(self, state):
        # The exact counters plus the always-associative sketches.
        # ``top_urls`` is excluded on purpose: the dataset's URL
        # universe exceeds the TopK capacity, and past capacity the
        # space-saving summary guarantees error *bounds*, not
        # split-invariant bit-identity.  The reservoir stays exact
        # here because the JSON stream fits in one reservoir.
        return (
            state.summary,
            state.traffic_source,
            state.request_type,
            state.cacheability,
            {domain: vars(stats) for domain, stats in state.domains.items()},
            bytes(state.client_sketch.registers),
            (sorted(state.json_size_sample.items), state.json_size_sample.count),
            (tuple(tuple(row) for row in state.url_counts.rows), state.url_counts.total),
            (dict(state.top_domains.counts), state.top_domains.total),
        )


class TestPeriodicityDetectionAlgebra:
    """Disjoint-union state: no stream, so just the union contract."""

    @staticmethod
    def outcome(object_id):
        return ObjectPeriodicity(object_id=object_id, object_period=None)

    def test_union_merges_disjoint_shards(self):
        rng = random.Random(909)
        for _ in range(TRIALS):
            ids = [f"obj-{index}" for index in range(rng.randrange(2, 30))]
            parts = random_split(ids, rng, 4)
            merged = PeriodicityDetectionState()
            for part in parts:
                merged = merged.merge(
                    PeriodicityDetectionState(
                        {object_id: self.outcome(object_id) for object_id in part}
                    )
                )
            assert sorted(merged.objects) == sorted(ids)

    def test_overlap_rejected(self):
        left = PeriodicityDetectionState({"obj-1": self.outcome("obj-1")})
        right = PeriodicityDetectionState({"obj-1": self.outcome("obj-1")})
        with pytest.raises(ValueError, match="overlap"):
            left.merge(right)

    def test_pickle_roundtrip(self):
        state = PeriodicityDetectionState({"obj-1": self.outcome("obj-1")})
        clone = pickle.loads(pickle.dumps(state))
        assert sorted(clone.objects) == ["obj-1"]
