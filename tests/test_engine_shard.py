"""Unit tests for repro.engine.shard — planning determinism."""

import pytest

from repro.engine.shard import (
    FileShard,
    MemoryShard,
    plan_directory_shards,
    plan_memory_shards,
)
from repro.engine.sketches import stable_hash64
from repro.logs.partition import write_partitioned
from tests.conftest import make_log


@pytest.fixture
def partition_root(tmp_path):
    base = 1_559_347_200.0
    logs = [
        make_log(timestamp=base + hour * 3600 + minute * 60, edge_id=edge)
        for edge in ("edge-0", "edge-1")
        for hour in (0, 1, 2)
        for minute in (5, 35)
    ]
    write_partitioned(logs, tmp_path)
    return tmp_path


class TestDirectoryShards:
    def test_one_shard_per_bucket_file(self, partition_root):
        shards = plan_directory_shards(partition_root)
        assert len(shards) == 6  # 2 edges × 3 hours
        assert all(isinstance(shard, FileShard) for shard in shards)

    def test_ids_are_relative_paths(self, partition_root):
        shards = plan_directory_shards(partition_root)
        assert shards[0].shard_id == "edge-0/2019-06-01-00.jsonl.gz"

    def test_plan_is_deterministic(self, partition_root):
        first = plan_directory_shards(partition_root)
        second = plan_directory_shards(partition_root)
        assert [s.shard_id for s in first] == [s.shard_id for s in second]

    def test_edge_filter(self, partition_root):
        shards = plan_directory_shards(partition_root, edge_id="edge-1")
        assert len(shards) == 3
        assert all(shard.shard_id.startswith("edge-1/") for shard in shards)

    def test_grouping_buckets(self, partition_root):
        shards = plan_directory_shards(partition_root, files_per_shard=2)
        assert len(shards) == 4  # per edge: [2 buckets, 1 bucket]
        assert shards[0].shard_id.endswith("+1")
        assert len(shards[0].paths) == 2

    def test_invalid_group_size(self, partition_root):
        with pytest.raises(ValueError):
            plan_directory_shards(partition_root, files_per_shard=0)

    def test_shards_cover_all_records(self, partition_root):
        shards = plan_directory_shards(partition_root)
        total = sum(len(list(shard.iter_logs())) for shard in shards)
        assert total == 12

    def test_missing_root_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            plan_directory_shards(tmp_path / "nope")


class TestMemoryShards:
    def _logs(self, count=200):
        return [
            make_log(client_ip_hash=f"client-{index % 23:04x}", url=f"/api/{index}")
            for index in range(count)
        ]

    def test_partition_is_complete(self):
        logs = self._logs()
        shards = plan_memory_shards(logs, 4)
        assert len(shards) == 4
        assert sum(len(shard.records) for shard in shards) == len(logs)

    def test_clients_stay_together(self):
        shards = plan_memory_shards(self._logs(), 4)
        owners = {}
        for index, shard in enumerate(shards):
            for record in shard.records:
                assert owners.setdefault(record.client_id, index) == index

    def test_assignment_matches_stable_hash(self):
        logs = self._logs(50)
        shards = plan_memory_shards(logs, 3)
        for index, shard in enumerate(shards):
            for record in shard.records:
                assert stable_hash64(record.client_id) % 3 == index

    def test_order_preserved_within_shard(self):
        logs = self._logs()
        shards = plan_memory_shards(logs, 2)
        for shard in shards:
            timestamps = [record.url for record in shard.records]
            expected = [
                record.url
                for record in logs
                if stable_hash64(record.client_id) % 2
                == int(shard.shard_id.split("-")[1])
            ]
            assert timestamps == expected

    def test_empty_shards_kept(self):
        logs = [make_log()]  # one client
        shards = plan_memory_shards(logs, 5)
        assert len(shards) == 5
        assert sum(len(shard.records) for shard in shards) == 1

    def test_single_shard(self):
        logs = self._logs(10)
        (shard,) = plan_memory_shards(logs, 1)
        assert isinstance(shard, MemoryShard)
        assert list(shard.iter_logs()) == logs

    def test_invalid_num_shards(self):
        with pytest.raises(ValueError):
            plan_memory_shards([], 0)
