"""Tests for repro.cdn.purge and repro.ngram.baseline."""

import pytest

from repro.cdn.cache import LruTtlCache
from repro.cdn.edge import EdgeServer
from repro.cdn.network import LatencyModel
from repro.cdn.origin import OriginFleet
from repro.cdn.purge import PurgeController, PurgeRequest
from repro.logs.record import CacheStatus
from repro.ngram.baseline import PerClientRecencyPredictor, PopularityPredictor
from repro.ngram.evaluate import evaluate_topk
from repro.ngram.model import BackoffNgramModel
from repro.synth.clients import Client
from repro.synth.domains import CachePolicyKind, DomainPopulation
from repro.synth.rng import substream
from repro.synth.sessions import RequestEvent
from repro.synth.sizes import SizeModel


@pytest.fixture(scope="module")
def domains():
    return DomainPopulation(num_domains=30, seed=55)


def make_edges(count):
    origins = OriginFleet()
    size_model = SizeModel(substream(12, "sz"))
    return [
        EdgeServer(
            f"edge-{i}",
            LruTtlCache(1 << 24),
            origins,
            LatencyModel(substream(12, "lat", str(i))),
            size_model,
            substream(12, "edge", str(i)),
        )
        for i in range(count)
    ]


@pytest.fixture
def client():
    return Client("cc00dd11", "NewsReader/1.0 (iPhone; iOS 13.1)", "mobile_app", 1.0)


def cacheable_domain(domains):
    for domain in domains:
        if domain.policy.kind is CachePolicyKind.ALWAYS:
            return domain
    pytest.skip("no ALWAYS domain")


class TestPurgeRequest:
    def test_exact_match(self):
        request = PurgeRequest("d.com/api/v1/home", 0.0)
        assert request.matches("d.com/api/v1/home")
        assert not request.matches("d.com/api/v1/other")

    def test_glob_match(self):
        request = PurgeRequest("d.com/api/v1/item/*", 0.0)
        assert request.matches("d.com/api/v1/item/42")
        assert not request.matches("d.com/api/v1/home")


class TestPurgeController:
    def test_purge_removes_after_propagation(self, domains, client):
        edges = make_edges(2)
        domain = cacheable_domain(domains)
        endpoint = domain.manifests[0]
        object_id = f"{domain.name}{endpoint.url}"
        for edge in edges:
            edge.serve(RequestEvent(0.0, client, domain, endpoint))
            assert edge.cache.contains_fresh(object_id, 1.0)

        controller = PurgeController(
            edges, substream(1, "purge"), propagation_median_s=5.0
        )
        controller.purge(object_id, now=10.0)
        controller.advance(now=10.0 + 1000.0)  # long after propagation
        for edge in edges:
            assert not edge.cache.contains_fresh(object_id, 1011.0)
        assert controller.objects_purged == 2
        assert controller.pending_count == 0

    def test_consistency_window_before_propagation(self, domains, client):
        edges = make_edges(3)
        controller = PurgeController(
            edges, substream(2, "purge"), propagation_median_s=10.0
        )
        request = controller.purge("anything/*", now=0.0)
        window = controller.consistency_window(request)
        assert window is not None and window > 0.0
        controller.advance(now=1e6)
        assert controller.consistency_window(request) is None

    def test_stale_serving_inside_window(self, domains, client):
        """Before the purge lands, edges still answer from cache."""
        edges = make_edges(1)
        domain = cacheable_domain(domains)
        endpoint = domain.manifests[0]
        edges[0].serve(RequestEvent(0.0, client, domain, endpoint))
        controller = PurgeController(
            edges, substream(3, "purge"), propagation_median_s=1e6
        )
        controller.purge(f"{domain.name}{endpoint.url}", now=1.0)
        controller.advance(now=2.0)  # purge not propagated yet
        served = edges[0].serve(RequestEvent(3.0, client, domain, endpoint))
        assert served.log.cache_status is CacheStatus.HIT

    def test_zero_propagation_is_instant(self, domains, client):
        edges = make_edges(1)
        domain = cacheable_domain(domains)
        endpoint = domain.manifests[0]
        edges[0].serve(RequestEvent(0.0, client, domain, endpoint))
        controller = PurgeController(
            edges, substream(4, "purge"), propagation_median_s=0.0
        )
        controller.purge(f"{domain.name}*", now=1.0)
        controller.advance(now=1.0)
        served = edges[0].serve(RequestEvent(2.0, client, domain, endpoint))
        assert served.log.cache_status is CacheStatus.MISS

    def test_glob_purge_whole_domain(self, domains, client):
        edges = make_edges(1)
        domain = cacheable_domain(domains)
        for endpoint in domain.manifests[:2]:
            edges[0].serve(RequestEvent(0.0, client, domain, endpoint))
        controller = PurgeController(
            edges, substream(5, "purge"), propagation_median_s=0.0
        )
        controller.purge(f"{domain.name}/*", now=1.0)
        dropped = controller.advance(now=1.0)
        assert dropped == min(2, len(domain.manifests))

    def test_negative_propagation_rejected(self):
        with pytest.raises(ValueError):
            PurgeController([], substream(6, "x"), propagation_median_s=-1.0)


class TestBaselinePredictors:
    def test_popularity_predicts_most_common(self):
        baseline = PopularityPredictor()
        baseline.fit([["a", "a", "a", "b", "b", "c"]])
        assert baseline.predict(["anything"], k=2) == ["a", "b"]

    def test_popularity_ignores_history(self):
        baseline = PopularityPredictor().fit([["a", "a", "b"]])
        assert baseline.predict(["b"], k=1) == baseline.predict(["zzz"], k=1)

    def test_recency_predicts_latest_distinct(self):
        baseline = PerClientRecencyPredictor()
        assert baseline.predict(["a", "b", "a", "c"], k=2) == ["c", "a"]

    def test_recency_empty_history(self):
        assert PerClientRecencyPredictor().predict([], k=3) == []

    def test_k_validated(self):
        with pytest.raises(ValueError):
            PopularityPredictor().predict([], k=0)
        with pytest.raises(ValueError):
            PerClientRecencyPredictor().predict([], k=0)

    def test_ngram_beats_popularity_on_structured_flows(self, long_json_logs):
        from repro.ngram.evaluate import build_client_sequences, split_clients

        sequences = build_client_sequences(long_json_logs)
        train_ids, test_ids = split_clients(sequences, seed=3)
        train = [sequences[cid] for cid in train_ids]
        test = [sequences[cid] for cid in test_ids][:200]

        ngram = BackoffNgramModel(order=1).fit(train)
        popularity = PopularityPredictor().fit(train)
        ngram_acc = evaluate_topk(ngram, test, n=1, ks=[1])[0].accuracy
        pop_acc = evaluate_topk(popularity, test, n=1, ks=[1])[0].accuracy
        assert ngram_acc > pop_acc + 0.1
