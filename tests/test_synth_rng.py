"""Unit tests for repro.synth.rng."""

import pytest

from repro.synth.rng import substream, weighted_choice, zipf_weights


class TestSubstream:
    def test_same_name_same_stream(self):
        a = substream(42, "clients")
        b = substream(42, "clients")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_names_differ(self):
        a = substream(42, "clients")
        b = substream(42, "domains")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_different_seeds_differ(self):
        a = substream(1, "clients")
        b = substream(2, "clients")
        assert a.random() != b.random()

    def test_nested_names(self):
        a = substream(1, "clients", "ua")
        b = substream(1, "clients")
        assert a.random() != b.random()

    def test_name_path_is_not_concatenation_ambiguous(self):
        # ("ab", "c") and ("a", "bc") must be different streams.
        a = substream(1, "ab", "c")
        b = substream(1, "a", "bc")
        assert a.random() != b.random()


class TestZipfWeights:
    def test_normalized(self):
        weights = zipf_weights(100, 1.0)
        assert sum(weights) == pytest.approx(1.0)

    def test_monotonic_decreasing(self):
        weights = zipf_weights(50, 0.9)
        assert all(a >= b for a, b in zip(weights, weights[1:]))

    def test_exponent_zero_is_uniform(self):
        weights = zipf_weights(10, 0.0)
        assert all(w == pytest.approx(0.1) for w in weights)

    def test_higher_exponent_more_skewed(self):
        mild = zipf_weights(100, 0.5)
        steep = zipf_weights(100, 1.5)
        assert steep[0] > mild[0]

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            zipf_weights(0)


class TestWeightedChoice:
    def test_respects_weights(self):
        rng = substream(7, "choice")
        picks = [
            weighted_choice(rng, ["a", "b"], [0.99, 0.01]) for _ in range(200)
        ]
        assert picks.count("a") > 150
