"""Tests for repro.periodicity.results — consensus vs merged-flow paths.

The §5.1 aggregation has two sources for an object's period: the
paper's merged-flow detection and our client-consensus extension.
These tests script the detector (no signal processing involved) to
pin down every reconciliation path: empty flows, single-client
objects where no consensus can form, equal-size cluster ties, the
consensus override of a phase-artifact merged detection, and the
determinism of all of the above under client insertion order — the
property the parallel pipeline's exactness guarantee leans on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.periodicity.detector import DetectedPeriod
from repro.periodicity.flows import ClientObjectFlow, ObjectFlow
from repro.periodicity.results import (
    PeriodicityReport,
    analyze_flows,
    analyze_object_flow,
)


def period(period_s, acf=0.9, power=10.0):
    return DetectedPeriod(
        period_s=period_s,
        acf_value=acf,
        spectral_power=power,
        acf_threshold=0.5,
        power_threshold=5.0,
    )


class ScriptedDetector:
    """Returns scripted detections keyed by (flow length, first ts).

    Client flows get distinct base offsets and the merged object flow
    has a distinct length, so every detect() call resolves to exactly
    one script entry regardless of client iteration order.  For a
    single-client object — whose merged flow is indistinguishable
    from the client flow — a script value may be a list, consumed
    front to back across calls (merged-flow detection runs first).
    """

    def __init__(self, script):
        self.script = dict(script)
        self.calls = []

    def detect(self, timestamps):
        key = (int(len(timestamps)), float(timestamps[0]))
        self.calls.append(key)
        if key not in self.script:
            raise AssertionError(f"unscripted detect() call: {key}")
        scripted = self.script[key]
        if isinstance(scripted, list):
            return scripted.pop(0)
        return scripted


def make_flow(object_id, clients, order=None):
    """Build an ObjectFlow; ``clients`` maps id → (base, count[, up, unc])."""
    flow = ObjectFlow(object_id)
    for client_id in order or sorted(clients):
        spec = clients[client_id]
        base, count = spec[0], spec[1]
        upload = spec[2] if len(spec) > 2 else 0
        uncacheable = spec[3] if len(spec) > 3 else 0
        flow.client_flows[client_id] = ClientObjectFlow(
            object_id=object_id,
            client_id=client_id,
            timestamps=base + 30.0 * np.arange(count, dtype=np.float64),
            upload_count=upload,
            uncacheable_count=uncacheable,
        )
    return flow


def merged_key(flow):
    merged = flow.merged_timestamps()
    return (int(len(merged)), float(merged[0]))


class TestEmptyFlows:
    def test_analyze_flows_empty(self):
        report = analyze_flows({}, total_json_requests=0)
        assert report.objects == {}
        assert report.periodic_request_count == 0
        assert report.periodic_request_fraction == 0.0
        assert report.periodic_upload_fraction == 0.0
        assert report.periodic_uncacheable_fraction == 0.0
        assert report.object_periods() == []
        assert report.period_histogram() == []
        assert report.share_cdf() == []
        assert report.majority_periodic_fraction() == 0.0

    def test_zero_json_requests_guard(self):
        report = PeriodicityReport(objects={}, total_json_requests=0)
        assert report.periodic_request_fraction == 0.0


class TestSingleClientObject:
    def test_no_consensus_possible(self):
        """One client can never form a consensus (minimum is three)."""
        clients = {"c1": (1000.0, 10, 4, 2)}
        flow = make_flow("obj", clients)
        # One client: the merged flow and the client flow share a key,
        # so script the two calls in order (merged first).
        detector = ScriptedDetector({
            (10, 1000.0): [period(60.0), period(60.0)],
        })
        outcome = analyze_object_flow(flow, detector=detector)
        assert outcome.object_period_source == "object-flow"
        assert outcome.object_period.period_s == 60.0
        assert outcome.periodic_clients == ["c1"]
        assert outcome.periodic_request_count == 10
        assert outcome.periodic_upload_count == 4
        assert outcome.periodic_uncacheable_count == 2
        assert outcome.periodic_client_share == 1.0
        assert outcome.is_periodic

    def test_single_client_disagreeing_with_merged(self):
        clients = {"c1": (1000.0, 10)}
        flow = make_flow("obj", clients)
        detector = ScriptedDetector({
            (10, 1000.0): [period(60.0), period(600.0)],
        })
        outcome = analyze_object_flow(flow, detector=detector)
        assert outcome.object_period.period_s == 60.0
        assert outcome.periodic_clients == []
        assert not outcome.is_periodic
        assert outcome.periodic_client_share == 0.0


class TestConsensus:
    def script_for(self, flow, client_periods, merged_period):
        script = {merged_key(flow): merged_period}
        for client_id, detected in client_periods.items():
            client_flow = flow.client_flows[client_id]
            script[(client_flow.request_count, float(client_flow.timestamps[0]))] = (
                detected
            )
        return ScriptedDetector(script)

    def test_consensus_supplies_missing_object_period(self):
        clients = {f"c{i}": (1000.0 * (i + 1), 10) for i in range(3)}
        flow = make_flow("obj", clients)
        detector = self.script_for(
            flow,
            {client_id: period(120.0) for client_id in clients},
            merged_period=None,
        )
        outcome = analyze_object_flow(flow, detector=detector)
        assert outcome.object_period_source == "client-consensus"
        assert outcome.object_period.period_s == 120.0
        assert sorted(outcome.periodic_clients) == sorted(clients)

    def test_two_clients_are_not_a_consensus(self):
        clients = {"c1": (1000.0, 10), "c2": (2000.0, 10)}
        flow = make_flow("obj", clients)
        detector = self.script_for(
            flow,
            {client_id: period(120.0) for client_id in clients},
            merged_period=None,
        )
        outcome = analyze_object_flow(flow, detector=detector)
        assert outcome.object_period is None
        assert outcome.object_period_source == "object-flow"
        assert outcome.periodic_clients == []
        assert not outcome.is_periodic

    def test_consensus_overrides_phase_artifact(self):
        """More clients on a different period than the merged one win."""
        clients = {f"c{i}": (1000.0 * (i + 1), 10, 1, 1) for i in range(4)}
        flow = make_flow("obj", clients)
        client_periods = {
            "c0": period(60.0),
            "c1": period(240.0),
            "c2": period(240.0),
            "c3": period(240.0),
        }
        detector = self.script_for(flow, client_periods, merged_period=period(60.0))
        outcome = analyze_object_flow(flow, detector=detector)
        assert outcome.object_period_source == "client-consensus"
        assert outcome.object_period.period_s == 240.0
        assert sorted(outcome.periodic_clients) == ["c1", "c2", "c3"]
        assert outcome.periodic_request_count == 30
        assert outcome.periodic_upload_count == 3
        assert outcome.periodic_uncacheable_count == 3

    def test_no_override_without_strictly_more_support(self):
        """A consensus merely *tying* the merged detection never wins."""
        clients = {f"c{i}": (1000.0 * (i + 1), 10) for i in range(6)}
        flow = make_flow("obj", clients)
        client_periods = {
            "c0": period(60.0),
            "c1": period(60.0),
            "c2": period(60.0),
            "c3": period(240.0),
            "c4": period(240.0),
            "c5": period(240.0),
        }
        detector = self.script_for(flow, client_periods, merged_period=period(60.0))
        outcome = analyze_object_flow(flow, detector=detector)
        assert outcome.object_period_source == "object-flow"
        assert outcome.object_period.period_s == 60.0
        assert sorted(outcome.periodic_clients) == ["c0", "c1", "c2"]


class TestTieDeterminism:
    """Equal-size period clusters resolve identically for any client
    insertion order — the invariant the sharded pipeline requires."""

    CLIENTS = {f"c{i}": (1000.0 * (i + 1), 10) for i in range(6)}
    PERIODS = {
        "c0": period(120.0),
        "c1": period(120.0),
        "c2": period(120.0),
        "c3": period(480.0),
        "c4": period(480.0),
        "c5": period(480.0),
    }

    def outcome_for(self, order):
        flow = make_flow("obj", self.CLIENTS, order=order)
        script = {merged_key(flow): None}
        for client_id in order:
            client_flow = flow.client_flows[client_id]
            script[(client_flow.request_count, float(client_flow.timestamps[0]))] = (
                self.PERIODS[client_id]
            )
        return analyze_object_flow(flow, detector=ScriptedDetector(script))

    def test_smallest_period_wins_the_tie(self):
        outcome = self.outcome_for(sorted(self.CLIENTS))
        assert outcome.object_period_source == "client-consensus"
        assert outcome.object_period.period_s == 120.0

    @pytest.mark.parametrize(
        "order",
        [
            ["c5", "c4", "c3", "c2", "c1", "c0"],
            ["c3", "c0", "c4", "c1", "c5", "c2"],
            ["c2", "c5", "c0", "c3", "c1", "c4"],
        ],
    )
    def test_insertion_order_irrelevant(self, order):
        expected = self.outcome_for(sorted(self.CLIENTS))
        shuffled = self.outcome_for(order)
        assert shuffled.object_period == expected.object_period
        assert shuffled.object_period_source == expected.object_period_source
        assert shuffled.periodic_clients == expected.periodic_clients
        assert shuffled.client_periods == expected.client_periods


class TestReportAggregates:
    def test_aggregates_over_scripted_outcomes(self):
        periodic = make_flow("obj-a", {f"c{i}": (1000.0 * (i + 1), 10, 2, 1) for i in range(2)})
        aperiodic = make_flow("obj-b", {"c9": (9000.0, 10)})
        script = {
            merged_key(periodic): period(60.0),
            merged_key(aperiodic): None,
            (10, 9000.0): None,
        }
        for client_flow in periodic.client_flows.values():
            script[(10, float(client_flow.timestamps[0]))] = period(60.0)
        detector = ScriptedDetector(script)
        report = analyze_flows(
            {"obj-a": periodic, "obj-b": aperiodic},
            total_json_requests=100,
            detector=detector,
        )
        assert report.periodic_request_count == 20
        assert report.periodic_request_fraction == pytest.approx(0.2)
        assert report.periodic_upload_fraction == pytest.approx(4 / 20)
        assert report.periodic_uncacheable_fraction == pytest.approx(2 / 20)
        assert report.object_periods() == [60.0]
        assert report.period_histogram() == [(60.0, 1)]
        # Only obj-a has a detected object period, so the CDF has one
        # sample with a 100% periodic-client share.
        assert report.share_cdf() == [(1.0, 1.0)]
        assert report.majority_periodic_fraction() == 1.0
