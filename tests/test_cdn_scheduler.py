"""Unit tests for repro.cdn.scheduler."""

import random

import pytest

from repro.cdn.scheduler import (
    HUMAN,
    MACHINE,
    ClassMetrics,
    Job,
    PriorityServer,
    simulate,
)


class TestJob:
    def test_negative_service_rejected(self):
        with pytest.raises(ValueError):
            Job(0.0, -1.0, HUMAN)

    def test_bad_priority_rejected(self):
        with pytest.raises(ValueError):
            Job(0.0, 1.0, 7)


class TestFifoBehaviour:
    def test_single_job(self):
        server = PriorityServer(priority_classes=False)
        done = server.run([Job(0.0, 2.0, HUMAN, 1)])
        assert done[0].start_s == 0.0
        assert done[0].finish_s == 2.0
        assert done[0].wait_s == 0.0

    def test_back_to_back_jobs_queue(self):
        server = PriorityServer(priority_classes=False)
        done = server.run([Job(0.0, 2.0, HUMAN, 1), Job(0.5, 2.0, HUMAN, 2)])
        by_id = {c.job.job_id: c for c in done}
        assert by_id[2].start_s == 2.0
        assert by_id[2].wait_s == pytest.approx(1.5)

    def test_idle_gap_respected(self):
        server = PriorityServer(priority_classes=False)
        done = server.run([Job(0.0, 1.0, HUMAN, 1), Job(10.0, 1.0, HUMAN, 2)])
        by_id = {c.job.job_id: c for c in done}
        assert by_id[2].start_s == 10.0

    def test_fifo_ignores_priority(self):
        server = PriorityServer(priority_classes=False)
        done = server.run(
            [
                Job(0.0, 5.0, MACHINE, 1),
                Job(0.1, 1.0, MACHINE, 2),
                Job(0.2, 1.0, HUMAN, 3),
            ]
        )
        by_id = {c.job.job_id: c for c in done}
        # Arrival order wins, so the machine job 2 runs before human 3.
        assert by_id[2].start_s < by_id[3].start_s

    def test_multi_server_parallelism(self):
        server = PriorityServer(num_servers=2, priority_classes=False)
        done = server.run([Job(0.0, 5.0, HUMAN, 1), Job(0.0, 5.0, HUMAN, 2)])
        assert all(c.wait_s == 0.0 for c in done)


class TestPriorityBehaviour:
    def test_human_preempts_queue_order(self):
        server = PriorityServer(priority_classes=True)
        done = server.run(
            [
                Job(0.0, 5.0, MACHINE, 1),  # occupies the server
                Job(0.1, 1.0, MACHINE, 2),
                Job(0.2, 1.0, HUMAN, 3),
            ]
        )
        by_id = {c.job.job_id: c for c in done}
        # Human job 3 jumps ahead of machine job 2.
        assert by_id[3].start_s < by_id[2].start_s

    def test_non_preemptive(self):
        server = PriorityServer(priority_classes=True)
        done = server.run(
            [Job(0.0, 5.0, MACHINE, 1), Job(0.1, 1.0, HUMAN, 2)]
        )
        by_id = {c.job.job_id: c for c in done}
        # The running machine job is never interrupted.
        assert by_id[1].finish_s == 5.0
        assert by_id[2].start_s == 5.0

    def test_all_jobs_complete(self):
        rng = random.Random(3)
        jobs = [
            Job(rng.uniform(0, 100), rng.uniform(0.1, 1.0),
                rng.choice([HUMAN, MACHINE]), i)
            for i in range(500)
        ]
        done = PriorityServer(priority_classes=True).run(jobs)
        assert len(done) == 500
        assert {c.job.job_id for c in done} == set(range(500))

    def test_work_conservation(self):
        """Total busy time identical under both policies."""
        rng = random.Random(5)
        jobs = [
            Job(rng.uniform(0, 50), rng.uniform(0.1, 0.5),
                rng.choice([HUMAN, MACHINE]), i)
            for i in range(300)
        ]
        fifo = PriorityServer(priority_classes=False).run(jobs)
        prio = PriorityServer(priority_classes=True).run(jobs)
        assert max(c.finish_s for c in fifo) == pytest.approx(
            max(c.finish_s for c in prio)
        )

    def test_deprioritization_helps_humans_under_load(self):
        """The §5.1 claim: humans wait less when machines yield."""
        rng = random.Random(7)
        jobs = []
        for i in range(2000):
            priority = MACHINE if rng.random() < 0.5 else HUMAN
            jobs.append(Job(rng.uniform(0, 100), rng.expovariate(12), priority, i))
        fifo = simulate(jobs, priority_classes=False)
        prio = simulate(jobs, priority_classes=True)
        assert prio[HUMAN].mean_wait_s < fifo[HUMAN].mean_wait_s
        assert prio[MACHINE].mean_wait_s >= fifo[MACHINE].mean_wait_s

    def test_invalid_server_count(self):
        with pytest.raises(ValueError):
            PriorityServer(num_servers=0)


class TestClassMetrics:
    def test_empty_metrics(self):
        metrics = ClassMetrics()
        assert metrics.mean_wait_s == 0.0
        assert metrics.percentile_wait_s(95) == 0.0

    def test_simulate_returns_both_classes(self):
        metrics = simulate([Job(0.0, 1.0, HUMAN, 1)])
        assert metrics[HUMAN].count == 1
        assert metrics[MACHINE].count == 0
