"""Unit tests for repro.cdn.prefetch."""

import pytest

from repro.cdn.cache import LruTtlCache
from repro.cdn.edge import EdgeServer
from repro.cdn.network import LatencyModel
from repro.cdn.origin import OriginFleet
from repro.cdn.prefetch import NgramPrefetcher, build_object_index
from repro.logs.record import CacheStatus
from repro.ngram.model import BackoffNgramModel
from repro.synth.clients import Client
from repro.synth.domains import CachePolicyKind, DomainPopulation
from repro.synth.rng import substream
from repro.synth.sessions import RequestEvent
from repro.synth.sizes import SizeModel


@pytest.fixture(scope="module")
def domains():
    return DomainPopulation(num_domains=25, seed=33)


@pytest.fixture
def edge():
    return EdgeServer(
        "edge-p",
        LruTtlCache(1 << 24),
        OriginFleet(),
        LatencyModel(substream(3, "lat")),
        SizeModel(substream(3, "sz")),
        substream(3, "edge"),
    )


@pytest.fixture
def client():
    return Client("ddee2233", "NewsReader/2.0 (iPhone; iOS 13.1)", "mobile_app", 1.0)


def always_domain(domains):
    for domain in domains:
        if domain.policy.kind is CachePolicyKind.ALWAYS:
            return domain
    pytest.skip("no ALWAYS domain in population")


class TestObjectIndex:
    def test_only_get_endpoints_indexed(self, domains):
        index = build_object_index(list(domains))
        for _, endpoint in index.values():
            assert endpoint.method.is_download()

    def test_keys_are_object_ids(self, domains):
        index = build_object_index(list(domains))
        domain = next(iter(domains))
        key = f"{domain.name}{domain.manifests[0].url}"
        assert key in index

    def test_telemetry_not_indexed(self, domains):
        index = build_object_index(list(domains))
        for domain in domains:
            for endpoint in domain.telemetry:
                assert f"{domain.name}{endpoint.url}" not in index


class TestPrefetcher:
    def _trained_model(self, domain):
        manifest = f"{domain.name}{domain.manifests[0].url}"
        item = f"{domain.name}{domain.contents[0].url}"
        model = BackoffNgramModel(order=1)
        model.fit([[manifest, item]] * 20)
        return model, manifest, item

    def test_prefetch_turns_miss_into_hit(self, edge, client, domains):
        domain = always_domain(domains)
        model, manifest_id, item_id = self._trained_model(domain)
        prefetcher = NgramPrefetcher(model, build_object_index([domain]), k=1)

        event = RequestEvent(0.0, client, domain, domain.manifests[0])
        edge.serve(event)
        issued = prefetcher.on_request(edge, event)
        assert issued == 1

        follow = RequestEvent(2.0, client, domain, domain.contents[0])
        served = edge.serve(follow)
        assert served.log.cache_status is CacheStatus.HIT

    def test_stats_track_issuance(self, edge, client, domains):
        domain = always_domain(domains)
        model, _, _ = self._trained_model(domain)
        prefetcher = NgramPrefetcher(model, build_object_index([domain]), k=1)
        event = RequestEvent(0.0, client, domain, domain.manifests[0])
        prefetcher.on_request(edge, event)
        assert prefetcher.stats.predictions == 1
        assert prefetcher.stats.issued == 1
        assert prefetcher.stats.issue_rate == 1.0

    def test_fresh_object_not_prefetched_twice(self, edge, client, domains):
        domain = always_domain(domains)
        model, _, _ = self._trained_model(domain)
        prefetcher = NgramPrefetcher(model, build_object_index([domain]), k=1)
        event = RequestEvent(0.0, client, domain, domain.manifests[0])
        prefetcher.on_request(edge, event)
        prefetcher.on_request(edge, event)
        assert prefetcher.stats.issued == 1
        assert prefetcher.stats.skipped_fresh == 1

    def test_unresolvable_prediction_skipped(self, edge, client, domains):
        domain = always_domain(domains)
        model = BackoffNgramModel(order=1)
        manifest_id = f"{domain.name}{domain.manifests[0].url}"
        model.fit([[manifest_id, "nonexistent.example.com/api/v1/x"]] * 5)
        prefetcher = NgramPrefetcher(model, build_object_index([domain]), k=1)
        event = RequestEvent(0.0, client, domain, domain.manifests[0])
        assert prefetcher.on_request(edge, event) == 0
        assert prefetcher.stats.skipped_unresolvable == 1

    def test_history_respects_length(self, edge, client, domains):
        domain = always_domain(domains)
        model, _, _ = self._trained_model(domain)
        prefetcher = NgramPrefetcher(
            model, build_object_index([domain]), k=1, history_length=2
        )
        for t in range(5):
            prefetcher.on_request(
                edge, RequestEvent(float(t), client, domain, domain.manifests[0])
            )
        history = prefetcher._histories[client.client_key]
        assert len(history) <= 2

    def test_invalid_k_rejected(self, domains):
        domain = always_domain(domains)
        model = BackoffNgramModel(order=1)
        with pytest.raises(ValueError):
            NgramPrefetcher(model, build_object_index([domain]), k=0)
