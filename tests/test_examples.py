"""Smoke tests: the shipped examples must run clean end to end.

The slowest examples (prefetch_cdn, traffic_monitoring) are exercised
at reduced scale by the benchmarks that cover the same code paths;
here we run the fast ones as real subprocesses so import errors, API
drift, or output regressions in `examples/` fail the suite.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=240):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
        cwd=EXAMPLES.parent,
    )


class TestExamples:
    def test_quickstart(self, tmp_path):
        result = run_example("quickstart.py", "4000")
        assert result.returncode == 0, result.stderr
        assert "Figure 3" in result.stdout
        assert "Figure 4" in result.stdout
        # Clean up the artifact the quickstart writes.
        artifact = EXAMPLES.parent / "quickstart.jsonl.gz"
        if artifact.exists():
            artifact.unlink()

    def test_news_app_sessions(self):
        result = run_example("news_app_sessions.py")
        assert result.returncode == 0, result.stderr
        assert "One app session" in result.stdout
        assert "Next-request prediction" in result.stdout
        assert "HIT" in result.stdout

    def test_iot_telemetry_detection(self):
        result = run_example("iot_telemetry_detection.py")
        assert result.returncode == 0, result.stderr
        assert "ALERT" in result.stdout
        assert "60.0s" in result.stdout

    def test_flash_crowd_purge(self):
        result = run_example("flash_crowd_purge.py")
        assert result.returncode == 0, result.stderr
        assert "purge issued" in result.stdout
        assert "THUNDERING HERD" in result.stdout
