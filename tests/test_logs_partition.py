"""Tests for repro.logs.partition."""

import pytest

from repro.logs.merge import is_time_ordered
from repro.logs.partition import (
    bucket_name,
    iter_partition_files,
    read_partitioned,
    write_partitioned,
)
from tests.conftest import make_log


@pytest.fixture
def sample_logs():
    base = 1_559_347_200.0  # 2019-06-01 00:00 UTC
    logs = []
    for edge in ("edge-0", "edge-1"):
        for hour in (0, 1, 3):
            for minute in (5, 25, 45):
                logs.append(
                    make_log(
                        timestamp=base + hour * 3600 + minute * 60,
                        edge_id=edge,
                    )
                )
    return logs


class TestBucketName:
    def test_utc_hour(self):
        assert bucket_name(1_559_347_200.0) == "2019-06-01-00"
        assert bucket_name(1_559_347_200.0 + 3 * 3600) == "2019-06-01-03"

    def test_day_rollover(self):
        assert bucket_name(1_559_347_200.0 + 24 * 3600) == "2019-06-02-00"


class TestWritePartitioned:
    def test_layout(self, sample_logs, tmp_path):
        written = write_partitioned(sample_logs, tmp_path)
        assert len(written) == 6  # 2 edges × 3 hours
        assert "edge-0/2019-06-01-00.jsonl.gz" in written
        assert all(count == 3 for count in written.values())

    def test_format_option(self, sample_logs, tmp_path):
        written = write_partitioned(sample_logs, tmp_path, fmt="tsv")
        assert all(name.endswith(".tsv") for name in written)

    def test_bad_format_rejected(self, sample_logs, tmp_path):
        with pytest.raises(ValueError):
            write_partitioned(sample_logs, tmp_path, fmt="parquet")

    def test_files_listable(self, sample_logs, tmp_path):
        write_partitioned(sample_logs, tmp_path)
        files = iter_partition_files(tmp_path)
        assert len(files) == 6
        per_edge = iter_partition_files(tmp_path, edge_id="edge-0")
        assert len(per_edge) == 3

    def test_missing_root_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            iter_partition_files(tmp_path / "nope")


class TestReadPartitioned:
    def test_round_trip_all_edges(self, sample_logs, tmp_path):
        import json

        write_partitioned(sample_logs, tmp_path)
        recovered = list(read_partitioned(tmp_path))
        assert len(recovered) == len(sample_logs)
        assert is_time_ordered(recovered)

        def multiset(records):
            return sorted(
                json.dumps(record.to_dict(), sort_keys=True)
                for record in records
            )

        assert multiset(recovered) == multiset(sample_logs)

    def test_single_edge_filter(self, sample_logs, tmp_path):
        write_partitioned(sample_logs, tmp_path)
        recovered = list(read_partitioned(tmp_path, edge_id="edge-1"))
        assert len(recovered) == 9
        assert all(record.edge_id == "edge-1" for record in recovered)

    def test_missing_edge_raises(self, sample_logs, tmp_path):
        write_partitioned(sample_logs, tmp_path)
        with pytest.raises(FileNotFoundError):
            list(read_partitioned(tmp_path, edge_id="edge-9"))

    def test_dataset_round_trip(self, short_dataset, tmp_path):
        sample = short_dataset.logs[:3000]
        write_partitioned(sample, tmp_path, fmt="tsv.gz")
        recovered = list(read_partitioned(tmp_path))
        assert len(recovered) == len(sample)
        assert is_time_ordered(recovered)


def _multiset(records):
    import json

    return sorted(
        json.dumps(record.to_dict(), sort_keys=True) for record in records
    )


class TestShardContract:
    """Round-trip guarantees the engine's directory shards rely on."""

    BASE = 1_559_347_200.0

    def _edge_logs(self, edge, hours, minute=10):
        return [
            make_log(
                timestamp=self.BASE + hour * 3600 + minute * 60,
                edge_id=edge,
                client_ip_hash=f"{edge}-h{hour}",
            )
            for hour in hours
        ]

    def test_many_edges_round_trip(self, tmp_path):
        logs = []
        for index in range(5):
            logs.extend(self._edge_logs(f"edge-{index}", (0, 1, 2)))
        write_partitioned(logs, tmp_path)
        recovered = list(read_partitioned(tmp_path))
        assert _multiset(recovered) == _multiset(logs)
        assert is_time_ordered(recovered)

    def test_mixed_gzip_and_plain_files(self, tmp_path):
        """One directory may mix compressed and plain partitions."""
        early = self._edge_logs("edge-0", (0, 1))
        late = self._edge_logs("edge-0", (2, 3))
        write_partitioned(early, tmp_path, fmt="jsonl.gz")
        write_partitioned(late, tmp_path, fmt="jsonl")
        names = [path.name for path in iter_partition_files(tmp_path)]
        assert any(name.endswith(".jsonl.gz") for name in names)
        assert any(not name.endswith(".gz") for name in names)
        recovered = list(read_partitioned(tmp_path))
        assert _multiset(recovered) == _multiset(early + late)
        assert is_time_ordered(recovered)

    def test_mixed_formats_across_edges(self, tmp_path):
        a = self._edge_logs("edge-a", (0, 1, 2))
        b = self._edge_logs("edge-b", (0, 1, 2), minute=40)
        write_partitioned(a, tmp_path, fmt="tsv.gz")
        write_partitioned(b, tmp_path, fmt="jsonl")
        recovered = list(read_partitioned(tmp_path))
        assert _multiset(recovered) == _multiset(a + b)
        assert is_time_ordered(recovered)

    def test_out_of_order_bucket_arrival(self, tmp_path):
        """Buckets written newest-first still read back time-ordered."""
        for hour in (3, 0, 2, 1):  # deliberately shuffled write order
            write_partitioned(
                self._edge_logs("edge-0", (hour,)), tmp_path
            )
        recovered = list(read_partitioned(tmp_path))
        assert is_time_ordered(recovered)
        assert len(recovered) == 4

    def test_disjoint_hours_across_edges_merge_ordered(self, tmp_path):
        """Edges with interleaved, non-overlapping hours k-way merge."""
        a = self._edge_logs("edge-a", (0, 2, 4))
        b = self._edge_logs("edge-b", (1, 3, 5))
        write_partitioned(a + b, tmp_path)
        recovered = list(read_partitioned(tmp_path))
        assert is_time_ordered(recovered)
        assert [record.edge_id for record in recovered] == [
            "edge-a", "edge-b", "edge-a", "edge-b", "edge-a", "edge-b"
        ]

    def test_day_rollover_bucket_sorts_after(self, tmp_path):
        logs = self._edge_logs("edge-0", (22, 23, 24, 25))  # crosses midnight
        write_partitioned(logs, tmp_path)
        names = [path.name for path in iter_partition_files(tmp_path)]
        assert names == sorted(names)
        recovered = list(read_partitioned(tmp_path))
        assert is_time_ordered(recovered)
        assert len(recovered) == 4
