"""Tests for repro.logs.sampling."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logs.sampling import (
    keep_fraction,
    sample_clients,
    sample_objects,
    sample_requests,
)
from tests.conftest import make_log


class TestKeepFraction:
    def test_deterministic(self):
        assert keep_fraction("client-1", 0.5, seed=3) == keep_fraction(
            "client-1", 0.5, seed=3
        )

    def test_extremes(self):
        assert keep_fraction("anything", 1.0)
        assert not keep_fraction("anything", 0.0)

    def test_seed_changes_selection(self):
        keys = [f"key-{i}" for i in range(200)]
        selection_a = {key for key in keys if keep_fraction(key, 0.5, seed=1)}
        selection_b = {key for key in keys if keep_fraction(key, 0.5, seed=2)}
        assert selection_a != selection_b

    def test_fraction_validated(self):
        with pytest.raises(ValueError):
            keep_fraction("x", 1.5)

    @given(st.floats(min_value=0.1, max_value=0.9))
    @settings(max_examples=20, deadline=None)
    def test_rate_approximately_respected(self, fraction):
        keys = [f"key-{i}" for i in range(2000)]
        kept = sum(keep_fraction(key, fraction, seed=7) for key in keys)
        assert abs(kept / len(keys) - fraction) < 0.05


class TestClientSampling:
    def _logs(self):
        logs = []
        for client in range(50):
            for i in range(10):
                logs.append(
                    make_log(timestamp=float(i), client_ip_hash=f"c{client:03d}")
                )
        return logs

    def test_flows_kept_whole(self):
        sampled = list(sample_clients(self._logs(), 0.4, seed=1))
        from collections import Counter

        per_client = Counter(record.client_id for record in sampled)
        # Every sampled client keeps all 10 of its requests.
        assert all(count == 10 for count in per_client.values())

    def test_rate_near_target(self):
        sampled = list(sample_clients(self._logs(), 0.4, seed=1))
        clients = {record.client_id for record in sampled}
        assert 10 <= len(clients) <= 30  # 40% of 50 ± noise

    def test_request_sampling_fragments_flows(self):
        sampled = list(sample_requests(self._logs(), 0.4, seed=1))
        from collections import Counter

        per_client = Counter(record.client_id for record in sampled)
        assert any(count < 10 for count in per_client.values())

    def test_object_sampling_keeps_objects_whole(self):
        logs = []
        for obj in range(20):
            for client in range(5):
                logs.append(
                    make_log(
                        timestamp=float(client),
                        url=f"/api/v1/item/{obj}",
                        client_ip_hash=f"c{client}",
                    )
                )
        sampled = list(sample_objects(logs, 0.5, seed=2))
        from collections import Counter

        per_object = Counter(record.object_id for record in sampled)
        assert all(count == 5 for count in per_object.values())

    def test_request_sampling_is_stream_independent(self):
        # The decision keys on (client, timestamp, url) only, so the
        # same record samples identically no matter which stream it
        # arrives in, in what order, or alongside what neighbors.
        logs = self._logs()
        straight = [
            r.url + "@" + r.client_id + "@" + repr(r.timestamp)
            for r in sample_requests(logs, 0.4, seed=9)
        ]
        shuffled_input = list(reversed(logs))
        reversed_keys = {
            r.url + "@" + r.client_id + "@" + repr(r.timestamp)
            for r in sample_requests(shuffled_input, 0.4, seed=9)
        }
        assert set(straight) == reversed_keys
        # Split into two streams: the union of decisions matches the
        # single-stream decisions record for record.
        half = len(logs) // 2
        split_keys = {
            r.url + "@" + r.client_id + "@" + repr(r.timestamp)
            for part in (logs[:half], logs[half:])
            for r in sample_requests(part, 0.4, seed=9)
        }
        assert split_keys == set(straight)

    def test_request_sampling_seed_and_url_independence(self):
        logs = self._logs()
        seed_a = {id(r) for r in sample_requests(logs, 0.4, seed=1)}
        seed_b = {id(r) for r in sample_requests(logs, 0.4, seed=2)}
        assert seed_a != seed_b
        # Same client, same instant, different URLs: independent
        # decisions, not one shared coin flip.
        twins = [
            make_log(timestamp=10.0, client_ip_hash="cSAME",
                     url=f"/api/v1/item/{i}")
            for i in range(64)
        ]
        kept = list(sample_requests(twins, 0.5, seed=0))
        assert 0 < len(kept) < len(twins)

    def test_periodicity_survives_client_sampling(self, long_json_logs):
        """The §5 use case: flows in the sample are analyzable whole."""
        from repro.periodicity.flows import FlowFilter, extract_flows

        sampled = list(sample_clients(long_json_logs, 0.6, seed=5))
        flows = extract_flows(
            sampled, FlowFilter(min_clients_per_object_flow=5)
        )
        full_flows = extract_flows(
            long_json_logs, FlowFilter(min_clients_per_object_flow=5)
        )
        # Sampled client flows are byte-identical subsets of the full
        # dataset's flows (no fragmented sequences).
        for object_id, flow in flows.items():
            for client_id, client_flow in flow.client_flows.items():
                full = full_flows[object_id].client_flows[client_id]
                assert client_flow.request_count == full.request_count
