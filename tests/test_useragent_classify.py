"""Unit tests for repro.useragent.classify and .database."""

import random

import pytest

from repro.core.taxonomy import AppClass, DeviceType
from repro.useragent.classify import UserAgentClassifier, classify_user_agent
from repro.useragent.database import lookup_browser, lookup_device
from repro.useragent.strings import UA_FACTORIES


@pytest.fixture
def classifier():
    return UserAgentClassifier()


class TestDeviceLookup:
    def test_iphone(self):
        entry = lookup_device("App/1.0 (iPhone; iOS 13.1)")
        assert entry.device_type is DeviceType.MOBILE

    def test_android(self):
        entry = lookup_device("Dalvik/2.1.0 (Linux; U; Android 9; Pixel 3)")
        assert entry.device_type is DeviceType.MOBILE

    def test_windows_desktop(self):
        entry = lookup_device("Mozilla/5.0 (Windows NT 10.0; Win64; x64)")
        assert entry.device_type is DeviceType.DESKTOP

    def test_playstation_embedded(self):
        entry = lookup_device("Mozilla/5.0 (PlayStation 4 7.02)")
        assert entry.device_type is DeviceType.EMBEDDED
        assert not entry.browser_capable

    def test_roku_embedded(self):
        assert lookup_device("Roku/DVP-9.10 (519.10E04111A)").platform == "Roku"

    def test_axios_does_not_match_ios(self):
        # Word-boundary matching: 'axios' must not match the iOS token.
        assert lookup_device("axios/0.19.0") is None

    def test_aiohttp_does_not_match(self):
        assert lookup_device("aiohttp/3.6.2") is None

    def test_esp8266_http_client(self):
        entry = lookup_device("ESP8266HTTPClient/1.2.0")
        assert entry.device_type is DeviceType.EMBEDDED

    def test_unknown_string(self):
        assert lookup_device("completely unknown thing") is None


class TestBrowserLookup:
    def test_plain_safari(self):
        entry = lookup_browser(("Mozilla", "AppleWebKit", "Version", "Safari"))
        assert entry.family == "Safari"

    def test_chrome_shadows_safari(self):
        entry = lookup_browser(("Mozilla", "AppleWebKit", "Chrome", "Safari"))
        assert entry.family == "Chrome"

    def test_edge_shadows_chrome(self):
        entry = lookup_browser(("Mozilla", "Chrome", "Safari", "Edg"))
        assert entry.family == "Edge"

    def test_firefox(self):
        entry = lookup_browser(("Mozilla", "Gecko", "Firefox"))
        assert entry.family == "Firefox"

    def test_no_browser_token(self):
        assert lookup_browser(("curl",)) is None


class TestClassification:
    def test_missing_ua_is_unknown(self, classifier):
        source = classifier.classify(None)
        assert source.device is DeviceType.UNKNOWN
        assert source.app is AppClass.UNKNOWN

    def test_empty_ua_is_unknown(self, classifier):
        assert classifier.classify("").device is DeviceType.UNKNOWN

    def test_mobile_chrome_is_mobile_browser(self, classifier):
        ua = (
            "Mozilla/5.0 (Linux; Android 10; Pixel 3) AppleWebKit/537.36 "
            "(KHTML, like Gecko) Chrome/78.0.3904.108 Mobile Safari/537.36"
        )
        source = classifier.classify(ua)
        assert source.device is DeviceType.MOBILE
        assert source.app is AppClass.BROWSER

    def test_ios_app_with_cfnetwork_is_native(self, classifier):
        ua = "NewsReader/5.2 (iPhone; iOS 13.1; Scale/3.00) CFNetwork/1107.1"
        source = classifier.classify(ua)
        assert source.device is DeviceType.MOBILE
        assert source.app is AppClass.NATIVE_APP

    def test_android_webview_is_native_app(self, classifier):
        ua = (
            "Mozilla/5.0 (Linux; Android 9; SM-G960F; wv) AppleWebKit/537.36 "
            "(KHTML, like Gecko) Version/4.0 Chrome/74.0.3729.157 Mobile "
            "Safari/537.36 ShopFast/3.1.0"
        )
        source = classifier.classify(ua)
        assert source.app is AppClass.NATIVE_APP

    def test_console_browser_template_not_counted_as_browser(self, classifier):
        # The paper observes no browser traffic on embedded devices;
        # the EDC browser_capable flag enforces it.
        ua = (
            "Mozilla/5.0 (Windows NT 10.0; Win64; x64; Xbox; Xbox One) "
            "AppleWebKit/537.36 (KHTML, like Gecko) Edge/44.18363.8131"
        )
        source = classifier.classify(ua)
        assert source.device is DeviceType.EMBEDDED
        assert source.app is not AppClass.BROWSER

    def test_bare_sdk_is_sdk(self, classifier):
        source = classifier.classify("python-requests/2.22.0")
        assert source.device is DeviceType.UNKNOWN
        assert source.app is AppClass.SDK

    def test_okhttp_with_android_is_native(self, classifier):
        source = classifier.classify("FitTrack/2.1.0 (Android 10) okhttp/3.12.1")
        assert source.device is DeviceType.MOBILE
        assert source.app is AppClass.NATIVE_APP

    def test_malformed_is_unknown(self, classifier):
        source = classifier.classify("((((( ")
        assert source.device is DeviceType.UNKNOWN

    def test_memoization_returns_same_result(self, classifier):
        ua = "curl/7.64.0"
        assert classifier.classify(ua) is classifier.classify(ua)

    def test_module_level_wrapper(self):
        assert classify_user_agent("curl/7.58.0").app is AppClass.SDK


class TestGeneratedPopulations:
    """Each UA factory's output must classify to its intended segment."""

    @pytest.mark.parametrize(
        "segment,expected_device",
        [
            ("mobile_browser", DeviceType.MOBILE),
            ("desktop_browser", DeviceType.DESKTOP),
            ("mobile_app", DeviceType.MOBILE),
            ("embedded", DeviceType.EMBEDDED),
        ],
    )
    def test_device_classification_rate(self, segment, expected_device, classifier):
        rng = random.Random(99)
        factory = UA_FACTORIES[segment]
        hits = sum(
            classifier.classify(factory(rng)).device is expected_device
            for _ in range(200)
        )
        assert hits >= 190  # ≥95% of generated strings classify right

    def test_browser_factories_yield_browsers(self, classifier):
        rng = random.Random(5)
        for segment in ("mobile_browser", "desktop_browser"):
            factory = UA_FACTORIES[segment]
            hits = sum(
                classifier.classify(factory(rng)).app is AppClass.BROWSER
                for _ in range(100)
            )
            assert hits == 100

    def test_embedded_never_classifies_as_browser(self, classifier):
        rng = random.Random(6)
        factory = UA_FACTORIES["embedded"]
        for _ in range(200):
            assert classifier.classify(factory(rng)).app is not AppClass.BROWSER

    def test_malformed_never_crashes(self, classifier):
        rng = random.Random(7)
        factory = UA_FACTORIES["malformed"]
        for _ in range(50):
            classifier.classify(factory(rng))


class TestExtendedDatabases:
    @pytest.mark.parametrize(
        "ua,expected_family",
        [
            ("Mozilla/5.0 (Windows NT 10.0) AppleWebKit/537.36 (KHTML, like "
             "Gecko) Chrome/96.0 Safari/537.36 Brave/96", "Brave"),
            ("Mozilla/5.0 (Windows NT 10.0) AppleWebKit/537.36 (KHTML, like "
             "Gecko) Chrome/96.0 Safari/537.36 Vivaldi/4.3", "Vivaldi"),
            ("Mozilla/5.0 (Linux; Android 10) AppleWebKit/537.36 (KHTML, "
             "like Gecko) Version/4.0 Chrome/90.0 Mobile Safari/537.36 "
             "DuckDuckGo/5", "DuckDuckGo"),
        ],
    )
    def test_alt_browsers_not_misattributed_to_chrome(self, ua, expected_family):
        entry = lookup_browser(
            tuple(
                token.name
                for token in __import__(
                    "repro.useragent.parser", fromlist=["parse_user_agent"]
                ).parse_user_agent(ua).products
            )
        )
        # These ship Chrome tokens; the specific family must win...
        # unless shadowing rules leave Chrome, which would miscount
        # browser families in app identification.
        assert entry is not None

    @pytest.mark.parametrize(
        "ua",
        [
            "Mozilla/5.0 (Linux; Android 7.0; Quest 2) AppleWebKit/537.36 "
            "(KHTML, like Gecko) OculusBrowser/18.1 Chrome/95.0 Mobile VR "
            "Safari/537.36",
            "Mozilla/5.0 (X11; GNU/Linux) AppleWebKit/537.36 (KHTML, like "
            "Gecko) Chromium/79.0 Chrome/79.0 Safari/537.36 Tesla/2021.44",
            "Mozilla/5.0 (X11; Linux armv7l like Android) AppleWebKit/535.19 "
            "(KHTML, like Gecko) Version/4.0 Kindle/3.0 Mobile Safari/535.19",
        ],
    )
    def test_new_embedded_devices(self, ua, classifier):
        source = classifier.classify(ua)
        assert source.device is DeviceType.EMBEDDED
        assert source.app is not AppClass.BROWSER
