"""Tests for repro.anomaly (periodic + sequence anomaly detection)."""

import random

import numpy as np
import pytest

from repro.anomaly.periodic import PeriodicAnomalyMonitor
from repro.anomaly.sequence import SequenceAnomalyDetector
from repro.logs.record import HttpMethod, RequestLog
from repro.synth.domains import DomainPopulation
from repro.synth.clients import ClientPopulation
from repro.synth.sessions import SessionGenerator
from tests.conftest import make_log


def timer_logs(client, url, period, count, seed=0, start=0.0):
    rng = np.random.default_rng(seed)
    times = start + rng.uniform(0, period) + np.arange(count) * period
    times = times + rng.normal(0, 0.25, count)
    return [
        make_log(timestamp=float(t), url=url, client_ip_hash=client)
        for t in np.sort(times)
    ]


class TestPeriodicMonitorLearning:
    def test_learn_from_baseline(self):
        logs = []
        for i in range(10):
            logs += timer_logs(f"c{i}", "/api/v1/poll", 60.0, 20, seed=i)
        monitor = PeriodicAnomalyMonitor()
        baselines = monitor.learn(logs)
        assert len(baselines) == 1
        baseline = next(iter(baselines.values()))
        assert abs(baseline.period_s - 60.0) <= 1.5

    def test_manual_baseline(self):
        monitor = PeriodicAnomalyMonitor()
        monitor.set_baseline("d.com/x", 30.0)
        assert monitor.baselines["d.com/x"].period_s == 30.0

    def test_manual_baseline_validates(self):
        monitor = PeriodicAnomalyMonitor()
        with pytest.raises(ValueError):
            monitor.set_baseline("d.com/x", -1.0)

    def test_tolerance_validated(self):
        with pytest.raises(ValueError):
            PeriodicAnomalyMonitor(tolerance=0.0)


class TestPeriodicMonitorChecking:
    @pytest.fixture
    def monitor(self):
        monitor = PeriodicAnomalyMonitor(tolerance=0.35)
        monitor.set_baseline("fastnews.example.com/api/v1/poll", 60.0)
        return monitor

    def _flow_times(self, period, count=12, seed=1):
        rng = np.random.default_rng(seed)
        return np.sort(np.arange(count) * period + rng.normal(0, 0.2, count))

    def test_on_period_flow_passes(self, monitor):
        alert = monitor.check_flow(
            "fastnews.example.com/api/v1/poll", "c1", self._flow_times(60.0)
        )
        assert alert is None

    def test_fast_flow_alerts(self, monitor):
        alert = monitor.check_flow(
            "fastnews.example.com/api/v1/poll", "c1", self._flow_times(5.0)
        )
        assert alert is not None
        assert alert.speed_ratio < 0.2
        assert "faster" in alert.describe()

    def test_harmonic_slowdown_allowed(self, monitor):
        # A device polling at exactly 2x the period (battery saver).
        alert = monitor.check_flow(
            "fastnews.example.com/api/v1/poll", "c1", self._flow_times(120.0)
        )
        assert alert is None

    def test_non_harmonic_slowdown_alerts(self, monitor):
        alert = monitor.check_flow(
            "fastnews.example.com/api/v1/poll", "c1", self._flow_times(95.0)
        )
        assert alert is not None

    def test_harmonics_can_be_disallowed(self):
        monitor = PeriodicAnomalyMonitor(allow_harmonics=False)
        monitor.set_baseline("fastnews.example.com/api/v1/poll", 60.0)
        alert = monitor.check_flow(
            "fastnews.example.com/api/v1/poll", "c1", self._flow_times(120.0)
        )
        assert alert is not None

    def test_unknown_object_ignored(self, monitor):
        assert (
            monitor.check_flow("other.com/x", "c1", self._flow_times(5.0)) is None
        )

    def test_short_flow_not_judged(self, monitor):
        times = self._flow_times(5.0)[:3]
        assert (
            monitor.check_flow(
                "fastnews.example.com/api/v1/poll", "c1", times
            )
            is None
        )

    def test_scan_finds_rogue_client(self, monitor):
        logs = []
        for i in range(5):
            logs += timer_logs(f"good{i}", "/api/v1/poll", 60.0, 15, seed=i)
        logs += timer_logs("rogue", "/api/v1/poll", 4.0, 50, seed=99)
        alerts = monitor.scan(sorted(logs, key=lambda r: r.timestamp))
        assert len(alerts) == 1
        assert alerts[0].client_id.startswith("rogue")

    def test_scan_survives_missed_polls(self, monitor):
        rng = np.random.default_rng(3)
        logs = [
            record
            for record in timer_logs("ok", "/api/v1/poll", 60.0, 30, seed=4)
            if rng.random() > 0.15
        ]
        assert monitor.scan(logs) == []


class TestSequenceDetector:
    @pytest.fixture(scope="class")
    def traffic(self):
        """Normal app traffic from the session model."""
        domains = DomainPopulation(num_domains=5, seed=6)
        clients = ClientPopulation(num_clients=40, seed=6)
        generator = SessionGenerator(random.Random(6))
        logs = []
        timestamp = 0.0
        for i in range(400):
            client = clients.clients[i % len(clients)]
            domain = domains.domains[i % len(domains)]
            for event in generator.app_session(client, domain, timestamp):
                logs.append(
                    RequestLog(
                        timestamp=event.timestamp,
                        client_ip_hash=client.ip_hash,
                        user_agent=client.user_agent,
                        method=event.endpoint.method,
                        domain=domain.name,
                        url=event.endpoint.url,
                        mime_type=event.endpoint.mime_type,
                        response_bytes=100,
                        cache_status="miss",
                        request_bytes=0,
                    )
                )
            timestamp += 1000.0
        return sorted(logs, key=lambda record: record.timestamp), domains

    def test_fit_sets_threshold(self, traffic):
        logs, _ = traffic
        detector = SequenceAnomalyDetector().fit(logs)
        assert detector.threshold is not None
        assert detector.threshold >= 0.0

    def test_normal_flow_low_alert_rate(self, traffic):
        logs, domains = traffic
        detector = SequenceAnomalyDetector(quantile=0.01).fit(logs)
        # A fresh organic session should mostly pass.
        generator = SessionGenerator(random.Random(77))
        clients = ClientPopulation(num_clients=3, seed=77)
        session = generator.app_session(
            clients.clients[0], domains.domains[0], 0.0
        )
        from repro.ngram.clustering import cluster_url

        tokens = [
            f"{domains.domains[0].name}{cluster_url(e.endpoint.url)}"
            for e in session
        ]
        rate = detector.flow_anomaly_rate(tokens)
        assert rate < 0.3

    def test_scanner_flow_flagged(self, traffic):
        logs, domains = traffic
        detector = SequenceAnomalyDetector(quantile=0.01).fit(logs)
        domain = domains.domains[0]
        # A scanner probing admin paths no app ever requests.
        scanner = [
            f"{domain.name}/admin/login",
            f"{domain.name}/wp-admin",
            f"{domain.name}/.env",
            f"{domain.name}/../../etc/passwd",
            f"{domain.name}/backup.sql",
        ]
        rate = detector.flow_anomaly_rate(scanner)
        assert rate > 0.7
        alerts = detector.scan_flow("scanner", scanner)
        assert alerts
        assert "scanner" in alerts[0].describe()

    def test_scan_over_logs(self, traffic):
        logs, domains = traffic
        detector = SequenceAnomalyDetector(quantile=0.01).fit(logs)
        domain = domains.domains[0]
        probe_logs = [
            make_log(
                timestamp=float(i),
                url=url,
                domain=domain.name,
                client_ip_hash="attacker",
            )
            for i, url in enumerate(
                ["/.git/config", "/etc/shadow", "/admin", "/debug/vars"]
            )
        ]
        alerts = detector.scan(probe_logs)
        assert alerts

    def test_unfitted_scan_raises(self):
        detector = SequenceAnomalyDetector()
        with pytest.raises(RuntimeError):
            detector.scan_flow("c", ["a", "b"])

    def test_quantile_validated(self):
        with pytest.raises(ValueError):
            SequenceAnomalyDetector(quantile=0.9)
