"""Chaos differential: faulted runs equal fault-free runs, exactly.

The robustness capstone.  For *transient* fault plans — every rule's
``times`` is within the run's retry budget, hangs are bounded by the
shard timeout, torn checkpoints hit only the next run's resume — the
characterization, periodicity, ngram and stream pipelines must
produce results identical (field by field, not approximately) to a
fault-free run.  If retries re-executed work, dropped records, or
double-merged a shard, these comparisons break.

Three plan families, per the robustness spec:

* **compute** — injected map exceptions plus shard hangs abandoned by
  the per-shard timeout, healed by bounded retries;
* **torn checkpoints** — damaged at save time, detected at load time,
  recomputed on resume (batch engine and stream windows);
* **truncated gzip** — partition files that end mid-stream on the
  first read attempt and come back clean on the retry.

Knobs (for the CI matrix):

* ``REPRO_CHAOS_SEEDS`` — comma-separated fault-plan seeds
  (default ``0``; CI runs several).
* ``REPRO_CHAOS_REPORT`` — if set, a JSON artifact of per-run fault
  and retry counters is written there, proving the plans actually
  exercised the machinery.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.core.pipeline import (
    run_characterization,
    run_characterization_parallel,
    run_ngram_parallel,
    run_periodicity_parallel,
    run_stream,
)
from repro.faults import FaultPlan, FaultRule
from repro.logs.partition import write_partitioned
from repro.ngram.evaluate import run_table3
from repro.periodicity.detector import DetectorConfig
from repro.periodicity.results import analyze_logs
from repro.stream import StreamService
from repro.stream.accumulators import merged_characterization
from repro.stream.service import StreamConfig
from repro.stream import merge_accumulators
from repro.synth.workload import WorkloadBuilder, long_term_config
from tests.test_engine_differential import assert_periodicity_identical

DETECTOR = DetectorConfig(permutations=10)

SEEDS = [
    int(seed)
    for seed in os.environ.get("REPRO_CHAOS_SEEDS", "0").split(",")
    if seed.strip()
]

BACKENDS = [
    pytest.param("thread", 4, id="thread"),
    pytest.param("process", 2, id="process"),
]

#: Per-run fault/retry counters, dumped to REPRO_CHAOS_REPORT.
_COUNTERS = []


def _record(test, seed, backend, plan, retries):
    _COUNTERS.append(
        {
            "test": test,
            "seed": seed,
            "backend": backend,
            # Parent-side firings only: process-pool workers consult
            # their own pickled plan copy, so `retries` is the
            # cross-backend proof that faults fired.
            "fired": plan.fired(),
            "retries": retries,
        }
    )


@pytest.fixture(scope="module", autouse=True)
def chaos_report():
    yield
    path = os.environ.get("REPRO_CHAOS_REPORT")
    if path:
        Path(path).write_text(json.dumps(_COUNTERS, indent=2) + "\n")


@pytest.fixture(scope="module")
def logs():
    return WorkloadBuilder(long_term_config(8_000, seed=11)).build().logs


@pytest.fixture(scope="module")
def baseline_characterization(logs):
    return run_characterization(logs)


@pytest.fixture(scope="module")
def baseline_periodicity(logs):
    return analyze_logs(logs, detector_config=DETECTOR)


@pytest.fixture(scope="module")
def baseline_ngram(logs):
    return run_table3(logs)


def compute_fault_plan(seed):
    """Plan (a): transient map exceptions plus bounded hangs.

    Every rule clears within the retry budget below (``times=1``,
    retries well above), and the hang is abandoned by the shard
    timeout long before its sleep ends — so the run must converge to
    the fault-free result.
    """
    return FaultPlan(
        seed,
        [
            FaultRule("map.exception", rate=0.35, times=1),
            FaultRule("map.hang", rate=0.12, times=1, param=4.0),
        ],
    )


#: Timeout well above any legitimate shard's compute time but far
#: below the injected hang; retries above every rule's ``times``.
HARDENING = dict(shard_timeout_s=2.0, retries=4)


def assert_characterization_identical(baseline, report):
    assert report.summary == baseline.summary
    assert report.traffic_source == baseline.traffic_source
    assert report.request_type == baseline.request_type
    assert report.cacheability == baseline.cacheability
    assert report.heatmap == baseline.heatmap
    assert report.apps == baseline.apps


class TestComputeFaultChaos:
    """Injected exceptions + hangs, healed by timeout/retry."""

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("backend,workers", BACKENDS)
    def test_characterization(
        self, logs, baseline_characterization, seed, backend, workers
    ):
        plan = compute_fault_plan(seed)
        report, stats = run_characterization_parallel(
            logs,
            workers=workers,
            backend=backend,
            faults=plan,
            with_stats=True,
            **HARDENING,
        )
        assert_characterization_identical(baseline_characterization, report)
        assert not stats.failed
        assert stats.retries > 0, "plan never exercised the retry path"
        _record(
            "characterization", seed, backend, plan, stats.retries
        )

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("backend,workers", BACKENDS)
    def test_periodicity(
        self, logs, baseline_periodicity, seed, backend, workers
    ):
        plan = compute_fault_plan(seed)
        report, stage_stats = run_periodicity_parallel(
            logs,
            detector_config=DETECTOR,
            workers=workers,
            backend=backend,
            faults=plan,
            with_stats=True,
            **HARDENING,
        )
        assert_periodicity_identical(baseline_periodicity, report)
        retries = sum(stats.retries for stats in stage_stats)
        assert retries > 0, "plan never exercised the retry path"
        _record("periodicity", seed, backend, plan, retries)

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("backend,workers", BACKENDS)
    def test_ngram(self, logs, baseline_ngram, seed, backend, workers):
        plan = compute_fault_plan(seed)
        results, stage_stats = run_ngram_parallel(
            logs,
            workers=workers,
            backend=backend,
            faults=plan,
            with_stats=True,
            **HARDENING,
        )
        assert results == baseline_ngram
        retries = sum(stats.retries for stats in stage_stats)
        assert retries > 0, "plan never exercised the retry path"
        _record("ngram", seed, backend, plan, retries)


class TestTornCheckpointChaos:
    """Checkpoints damaged at save time never poison a resume."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_batch_resume_recomputes_torn_shards(
        self, logs, baseline_characterization, tmp_path, seed
    ):
        plan = FaultPlan(seed, [FaultRule("checkpoint.torn", rate=0.5)])
        ckpt = str(tmp_path / "ckpt")
        # Run 1 writes some torn checkpoints; its own (in-memory)
        # result must already be correct — the tear is write-side.
        first, stats1 = run_characterization_parallel(
            logs, checkpoint_dir=ckpt, faults=plan, with_stats=True
        )
        assert_characterization_identical(baseline_characterization, first)
        torn = plan.fired().get("checkpoint.torn", 0)
        assert torn > 0, "plan never tore a checkpoint"
        # Run 2 (fault-free) must detect every torn file, recompute
        # those shards, and still match the baseline exactly.
        second, stats2 = run_characterization_parallel(
            logs, checkpoint_dir=ckpt, with_stats=True
        )
        assert_characterization_identical(baseline_characterization, second)
        assert stats2.recomputed_checkpoints == torn
        assert stats2.skipped == stats2.total_shards - torn
        # Run 3: the recompute re-saved healthy files.
        _, stats3 = run_characterization_parallel(
            logs, checkpoint_dir=ckpt, with_stats=True
        )
        assert stats3.skipped == stats3.total_shards
        _record(
            "batch-torn-checkpoint", seed, "process", plan,
            stats2.recomputed_checkpoints,
        )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_stream_resume_reseals_torn_windows(
        self, logs, baseline_characterization, tmp_path, seed
    ):
        plan = FaultPlan(
            seed,
            [
                FaultRule("checkpoint.torn", rate=0.5),
                FaultRule("ingest.stall", rate=1.0, times=1, param=0.1),
            ],
        )
        ckpt = str(tmp_path / "stream-ckpt")
        ordered = sorted(logs, key=lambda record: record.timestamp)
        kwargs = dict(
            window_s=1_800.0,
            detect_periods=False,
            predict_urls=False,
            keep_accumulators=True,
        )
        baseline = run_stream(ordered, **kwargs)
        # Run 1: through the real ingest queue (stall fires there),
        # tearing some window checkpoints as they seal.
        first = run_stream(
            ordered,
            checkpoint_dir=ckpt,
            ingest_workers=2,
            faults=plan,
            **kwargs,
        )
        assert first.sealed_windows == baseline.sealed_windows
        assert first.records_windowed == len(ordered)
        assert first.ingest.stalls == 1
        report = merged_characterization(
            merge_accumulators(first.accumulators)
        )
        assert_characterization_identical(baseline_characterization, report)
        torn = plan.fired().get("checkpoint.torn", 0)
        assert torn > 0, "plan never tore a window checkpoint"
        # Run 2 (fault-free): torn windows read as never-sealed and
        # are recomputed; readable ones are resumed, not re-counted.
        second = run_stream(ordered, checkpoint_dir=ckpt, **kwargs)
        assert second.resumed_windows == baseline.sealed_windows - torn
        assert second.sealed_windows == torn
        assert (
            second.records_windowed + second.resumed_skips == len(ordered)
        )
        # After the re-seal the store holds every window; merging the
        # full set reproduces the batch result exactly.
        service = StreamService(
            StreamConfig(window_s=1_800.0, checkpoint_dir=ckpt)
        )
        accumulators = service.load_sealed_accumulators()
        assert len(accumulators) == baseline.sealed_windows
        report = merged_characterization(merge_accumulators(accumulators))
        assert_characterization_identical(baseline_characterization, report)
        _record(
            "stream-torn-checkpoint", seed, "replay", plan,
            second.sealed_windows,
        )


class TestTruncatedGzipChaos:
    """Partition files that truncate on first read, clean on retry."""

    @pytest.fixture(scope="class")
    def partition_root(self, logs, tmp_path_factory):
        root = tmp_path_factory.mktemp("chaos-parts") / "parts"
        write_partitioned(logs, root)
        return root

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("backend,workers", BACKENDS)
    def test_characterization(
        self, partition_root, seed, backend, workers
    ):
        baseline = run_characterization_parallel(
            logs_dir=str(partition_root), workers=workers, backend=backend
        )
        plan = FaultPlan(
            seed, [FaultRule("io.truncated_gzip", rate=0.5, times=1, param=3)]
        )
        report, stats = run_characterization_parallel(
            logs_dir=str(partition_root),
            workers=workers,
            backend=backend,
            faults=plan,
            retries=1,
            with_stats=True,
        )
        assert_characterization_identical(baseline, report)
        assert not stats.failed
        assert stats.retries > 0, "plan never truncated a partition file"
        _record("truncated-gzip", seed, backend, plan, stats.retries)
