"""Unit tests for repro.logs.schema."""

import pytest

from repro.logs.record import CacheStatus, HttpMethod
from repro.logs.schema import DEFAULT_SCHEMA, LogSchema, SchemaError, ValidationIssue
from tests.conftest import make_log


@pytest.fixture
def schema():
    return LogSchema()


class TestValidRecords:
    def test_baseline_record_is_valid(self, schema):
        assert schema.validate_record(make_log()) == []

    def test_missing_user_agent_is_valid(self, schema):
        assert schema.validate_record(make_log(user_agent=None)) == []

    def test_missing_ttl_is_valid(self, schema):
        assert schema.validate_record(make_log(ttl_seconds=None)) == []

    def test_int_timestamp_accepted(self, schema):
        assert schema.validate_record(make_log(timestamp=12345)) == []


class TestFieldViolations:
    def test_negative_timestamp(self, schema):
        issues = schema.validate_record(make_log(timestamp=-1.0))
        assert any(i.field == "timestamp" for i in issues)

    def test_empty_client_hash(self, schema):
        issues = schema.validate_record(make_log(client_ip_hash=""))
        assert any(i.field == "client_ip_hash" for i in issues)

    def test_relative_url_rejected(self, schema):
        issues = schema.validate_record(make_log(url="api/home"))
        assert any(i.field == "url" for i in issues)

    def test_url_with_whitespace_rejected(self, schema):
        issues = schema.validate_record(make_log(url="/a b"))
        assert any(i.field == "url" for i in issues)

    def test_bad_mime_type(self, schema):
        issues = schema.validate_record(make_log(mime_type="json"))
        assert any(i.field == "mime_type" for i in issues)

    def test_status_out_of_range(self, schema):
        issues = schema.validate_record(make_log(status=42))
        assert any(i.field == "status" for i in issues)

    def test_negative_response_bytes(self, schema):
        issues = schema.validate_record(make_log(response_bytes=-5))
        assert any(i.field == "response_bytes" for i in issues)

    def test_wrong_type_reported(self, schema):
        issues = schema.validate_record(make_log(status=200.0))
        assert any(i.field == "status" and "expected int" in i.message for i in issues)


class TestCrossFieldInvariants:
    def test_no_store_with_ttl_rejected(self, schema):
        record = make_log(cache_status=CacheStatus.NO_STORE, ttl_seconds=60.0)
        issues = schema.validate_record(record)
        assert any(i.field == "ttl_seconds" for i in issues)

    def test_get_with_body_rejected(self, schema):
        record = make_log(method=HttpMethod.GET, request_bytes=100)
        issues = schema.validate_record(record)
        assert any(i.field == "request_bytes" for i in issues)

    def test_post_with_body_allowed(self, schema):
        record = make_log(method=HttpMethod.POST, request_bytes=100)
        assert schema.validate_record(record) == []


class TestModes:
    def test_require_valid_returns_record(self, schema):
        record = make_log()
        assert schema.require_valid(record) is record

    def test_require_valid_raises_with_details(self, schema):
        with pytest.raises(SchemaError, match="timestamp"):
            schema.require_valid(make_log(timestamp=-1.0))

    def test_clean_splits_records(self, schema):
        good = make_log()
        bad = make_log(status=999)
        valid, quarantined = schema.clean([good, bad, good])
        assert valid == [good, good]
        assert len(quarantined) == 1
        assert quarantined[0][0] is bad

    def test_iter_valid_is_lazy_filter(self, schema):
        records = [make_log(), make_log(timestamp=-2.0)]
        assert list(schema.iter_valid(records)) == [records[0]]

    def test_default_schema_is_shared_instance(self):
        assert DEFAULT_SCHEMA.validate_record(make_log()) == []


class TestValidationIssueDisplay:
    def test_str_contains_field_and_value(self):
        issue = ValidationIssue("status", "bad", 999)
        assert "status" in str(issue) and "999" in str(issue)

    def test_long_values_truncated(self):
        issue = ValidationIssue("url", "bad", "x" * 500)
        assert len(str(issue)) < 200
