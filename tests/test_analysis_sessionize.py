"""Tests for repro.analysis.sessionize and per-position accuracy."""

import pytest

from repro.analysis.sessionize import (
    Session,
    session_statistics,
    sessionize,
)
from repro.ngram.evaluate import accuracy_by_position
from repro.ngram.model import BackoffNgramModel
from tests.conftest import make_log


def client_stream(client, times, url="/api/v1/home"):
    return [
        make_log(timestamp=float(t), client_ip_hash=client, url=url)
        for t in times
    ]


class TestSessionize:
    def test_single_burst_is_one_session(self):
        logs = client_stream("c1", [0, 10, 20, 30])
        sessions = sessionize(logs, gap_s=300.0)
        assert len(sessions) == 1
        assert sessions[0].length == 4

    def test_gap_splits_sessions(self):
        logs = client_stream("c1", [0, 10, 2000, 2010])
        sessions = sessionize(logs, gap_s=300.0)
        assert len(sessions) == 2
        assert [session.length for session in sessions] == [2, 2]

    def test_gap_boundary_exclusive(self):
        logs = client_stream("c1", [0, 300.0])
        assert len(sessionize(logs, gap_s=300.0)) == 1
        logs = client_stream("c1", [0, 300.5])
        assert len(sessionize(logs, gap_s=300.0)) == 2

    def test_clients_never_merge(self):
        logs = client_stream("c1", [0, 10]) + client_stream("c2", [5, 15])
        sessions = sessionize(logs, gap_s=300.0)
        assert len(sessions) == 2
        assert {session.client_id.split("|")[0] for session in sessions} == {
            "c1",
            "c2",
        }

    def test_unordered_input_handled(self):
        logs = client_stream("c1", [30, 0, 20, 10])
        sessions = sessionize(logs, gap_s=300.0)
        assert sessions[0].urls() == ["/api/v1/home"] * 4
        assert sessions[0].duration_s == 30.0

    def test_json_filter(self):
        logs = client_stream("c1", [0]) + [
            make_log(timestamp=1.0, mime_type="text/html", client_ip_hash="c1")
        ]
        sessions = sessionize(logs)
        assert sessions[0].length == 1

    def test_invalid_gap(self):
        with pytest.raises(ValueError):
            sessionize([], gap_s=0.0)

    def test_sessions_sorted_by_start(self):
        logs = client_stream("c1", [100, 110]) + client_stream("c2", [0, 10])
        sessions = sessionize(logs)
        starts = [session.start for session in sessions]
        assert starts == sorted(starts)


class TestSessionStats:
    def test_aggregates(self):
        logs = client_stream("c1", [0, 10, 20]) + client_stream(
            "c2", [0, 5]
        )
        stats = session_statistics(sessionize(logs))
        assert stats.total_sessions == 2
        assert stats.mean_length == pytest.approx(2.5)
        assert stats.length_percentile(100) == 3

    def test_manifest_first_fraction(self):
        logs = client_stream("c1", [0, 10], url="/api/v1/home")
        logs += client_stream("c2", [0, 10], url="/api/v1/item/5")
        stats = session_statistics(sessionize(logs))
        assert stats.manifest_first_fraction() == pytest.approx(0.5)

    def test_on_synthetic_dataset(self, long_dataset):
        sessions = sessionize(long_dataset.logs, gap_s=300.0)
        stats = session_statistics(sessions)
        assert stats.total_sessions > 100
        # App sessions average a handful of requests...
        assert 2.0 < stats.mean_length < 30.0
        # ...and overwhelmingly open on config/manifest endpoints
        # (the Table 1 pattern).
        assert stats.manifest_first_fraction(
            ("/home", "/config", "/stories", "/poll", "/telemetry",
             "/events", "/notifications", "/scores")
        ) > 0.6

    def test_empty(self):
        stats = session_statistics([])
        assert stats.mean_length == 0.0
        assert stats.manifest_first_fraction() == 0.0


class TestAccuracyByPosition:
    def test_early_positions_most_predictable(self):
        # Deterministic opening, random tail.
        import random

        rng = random.Random(3)
        train, test = [], []
        for _ in range(300):
            tail = [rng.choice("wxyz") for _ in range(4)]
            sequence = ["config", "home"] + tail
            (train if rng.random() < 0.7 else test).append(sequence)
        model = BackoffNgramModel(order=1).fit(train)
        by_position = accuracy_by_position(model, test, n=1, k=1,
                                           max_position=4)
        assert by_position[0].accuracy > 0.95  # config → home forced
        assert by_position[0].accuracy > by_position[-1].accuracy

    def test_bucket_aggregation(self):
        model = BackoffNgramModel(order=1).fit([["a", "b"] * 10])
        results = accuracy_by_position(
            model, [["a", "b"] * 10], n=1, k=1, max_position=3
        )
        assert results[-1].total > 1  # positions ≥3 pooled
