"""Tests for repro.periodicity.phase."""

import numpy as np
import pytest

from repro.periodicity.flows import FlowFilter, extract_flows
from repro.periodicity.phase import (
    object_phase_profile,
    phase_coherence,
)
from tests.conftest import make_log


def build_flow(client_phases, period=60.0, count=20, jitter=0.1, seed=0):
    """Object flow with one timer client per given phase."""
    rng = np.random.default_rng(seed)
    logs = []
    for index, phase in enumerate(client_phases):
        for tick in range(count):
            logs.append(
                make_log(
                    timestamp=phase + tick * period + float(rng.normal(0, jitter)),
                    url="/api/v1/poll",
                    client_ip_hash=f"c{index}",
                )
            )
    flows = extract_flows(
        logs,
        FlowFilter(
            min_requests_per_client_flow=5,
            min_clients_per_object_flow=1,
        ),
    )
    return next(iter(flows.values()))


class TestPhaseCoherence:
    def test_identical_phases_fully_coherent(self):
        assert phase_coherence([5.0, 5.0, 5.0], 60.0) == pytest.approx(1.0)

    def test_opposite_phases_cancel(self):
        assert phase_coherence([0.0, 30.0], 60.0) == pytest.approx(0.0, abs=1e-9)

    def test_uniform_stagger_low_coherence(self):
        phases = [i * 6.0 for i in range(10)]  # evenly spread over 60s
        assert phase_coherence(phases, 60.0) < 0.05

    def test_empty(self):
        assert phase_coherence([], 60.0) == 0.0

    def test_wraparound_phases_coherent(self):
        # 59.5s and 0.5s are 1 second apart on the circle, not 59.
        assert phase_coherence([59.5, 0.5], 60.0) > 0.99


class TestObjectPhaseProfile:
    def test_synchronized_fleet(self):
        flow = build_flow([10.0] * 8)
        profile = object_phase_profile(flow, 60.0)
        assert profile.synchronized
        assert profile.coherence > 0.95
        assert profile.burst_factor > 5.0

    def test_staggered_fleet(self):
        flow = build_flow([i * 7.5 for i in range(8)])
        profile = object_phase_profile(flow, 60.0)
        assert not profile.synchronized
        assert profile.coherence < 0.3
        assert profile.burst_factor < 4.0

    def test_client_phases_recovered(self):
        flow = build_flow([10.0, 40.0], jitter=0.05)
        profile = object_phase_profile(flow, 60.0)
        phases = sorted(profile.client_phases_s.values())
        assert phases[0] == pytest.approx(10.0, abs=0.5)
        assert phases[1] == pytest.approx(40.0, abs=0.5)

    def test_synchronized_hurts_more_than_staggered(self):
        """The operational point: same load, very different peaks."""
        herd = object_phase_profile(build_flow([5.0] * 10), 60.0)
        spread = object_phase_profile(
            build_flow([i * 6.0 for i in range(10)]), 60.0
        )
        assert herd.burst_factor > 2 * spread.burst_factor

    def test_invalid_period(self):
        flow = build_flow([0.0])
        with pytest.raises(ValueError):
            object_phase_profile(flow, 0.0)
