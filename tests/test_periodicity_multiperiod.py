"""Unit tests for repro.periodicity.multiperiod."""

import numpy as np
import pytest

from repro.periodicity.multiperiod import MultiPeriodDetector


@pytest.fixture(scope="module")
def detector():
    return MultiPeriodDetector()


def comb(period, count, phase=0.0, jitter=0.25, seed=0):
    rng = np.random.default_rng(seed)
    return phase + np.arange(count) * period + rng.normal(0, jitter, count)


class TestSinglePeriodFlows:
    def test_single_timer_single_component(self, detector):
        flow = np.sort(comb(60.0, 50, seed=1))
        components = detector.detect(flow)
        assert len(components) == 1
        assert abs(components[0].period_s - 60.0) <= 1.5
        assert components[0].event_count >= 45

    def test_noise_yields_nothing(self, detector):
        rng = np.random.default_rng(2)
        assert detector.detect(np.sort(rng.uniform(0, 3600, 50))) == []

    def test_too_few_events(self, detector):
        assert detector.detect(np.array([1.0, 2.0, 3.0])) == []


class TestTwoTimerFlows:
    def test_both_periods_recovered(self, detector):
        merged = np.sort(
            np.concatenate([comb(30.0, 120, seed=3), comb(90.0, 40, phase=7, seed=4)])
        )
        components = detector.detect(merged)
        periods = sorted(round(c.period_s) for c in components)
        assert periods == [30, 90]

    def test_event_attribution_roughly_correct(self, detector):
        merged = np.sort(
            np.concatenate([comb(30.0, 120, seed=3), comb(90.0, 40, phase=7, seed=4)])
        )
        components = detector.detect(merged)
        by_period = {round(c.period_s): c.event_count for c in components}
        assert abs(by_period[30] - 120) <= 15
        assert abs(by_period[90] - 40) <= 10

    def test_strongest_component_first(self, detector):
        merged = np.sort(
            np.concatenate([comb(30.0, 120, seed=5), comb(600.0, 12, phase=3, seed=6)])
        )
        components = detector.detect(merged)
        assert components[0].period_s == pytest.approx(30.0, abs=1.5)

    def test_max_periods_respected(self):
        limited = MultiPeriodDetector(max_periods=1)
        merged = np.sort(
            np.concatenate([comb(30.0, 120, seed=7), comb(90.0, 40, phase=5, seed=8)])
        )
        assert len(limited.detect(merged)) == 1

    def test_phase_estimate_reasonable(self, detector):
        flow = np.sort(comb(60.0, 50, phase=0.0, seed=9))
        component = detector.detect(flow)[0]
        # Phase is relative to the first event, which sits on the comb.
        residual = component.phase_s % 60.0
        assert min(residual, 60.0 - residual) < 3.0


class TestConfigValidation:
    def test_invalid_max_periods(self):
        with pytest.raises(ValueError):
            MultiPeriodDetector(max_periods=0)

    def test_min_comb_share_guard(self):
        # A detector requiring most events on the comb rejects a weak
        # second timer.
        strict = MultiPeriodDetector(min_comb_share=0.9)
        merged = np.sort(
            np.concatenate([comb(30.0, 100, seed=10), comb(90.0, 30, phase=5, seed=11)])
        )
        components = strict.detect(merged)
        assert len(components) <= 1
