"""End-to-end tests for the stream service: emission, crash-resume,
drift, and the ``repro stream`` CLI wiring."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.core.pipeline import run_characterization, run_stream
from repro.stream import (
    JsonlEmitter,
    StreamConfig,
    StreamService,
    iterable_source,
    merge_accumulators,
    merged_characterization,
    window_id,
)
from tests.conftest import make_log

BASE_TS = 1_559_347_200.0


def minute_logs(count, start=0.0, step=2.0):
    """In-order records spanning count*step seconds from BASE_TS+start."""
    return [
        make_log(
            timestamp=BASE_TS + start + index * step,
            url=f"/api/v1/item/{index % 7}",
            client_ip_hash=f"client{index % 5:02d}00000000",
        )
        for index in range(count)
    ]


def fast_config(**overrides):
    """Window config with the per-window heavy analyses off."""
    settings = dict(
        window_s=60.0, detect_periods=False, predict_urls=False
    )
    settings.update(overrides)
    return StreamConfig(**settings)


class TestSnapshotsAndEmission:
    def test_jsonl_emission_matches_snapshots(self, tmp_path):
        out = tmp_path / "windows.jsonl"
        result = run_stream(
            minute_logs(240),
            window_s=60.0,
            detect_periods=False,
            predict_urls=False,
            emit=str(out),
        )
        lines = [json.loads(line) for line in out.read_text().splitlines()]
        assert len(lines) == len(result.snapshots) == result.sealed_windows
        for line, snapshot in zip(lines, result.snapshots):
            assert line["window_start"] == snapshot.window_start
            assert line["records"] == snapshot.records
            assert 0.0 <= line["json_share"] <= 1.0
            assert set(line) >= {
                "window_end", "json_requests", "get_share",
                "uncacheable_share", "unique_clients", "drift",
                "late_dropped",
            }

    def test_drift_tracks_across_windows(self):
        # First window all JSON GETs, second window none: json_share
        # must show up as a drifted metric in window 2's snapshot.
        first = [
            make_log(timestamp=BASE_TS + index * 2.0)
            for index in range(30)
        ]
        second = [
            make_log(
                timestamp=BASE_TS + 60.0 + index * 2.0,
                mime_type="text/html",
                url="/page",
            )
            for index in range(30)
        ]
        result = StreamService(fast_config()).replay(first + second)
        assert result.sealed_windows == 2
        assert result.snapshots[0].drift == {}
        assert "json_share" in result.snapshots[1].drift

    def test_quiet_window_drift_covers_full_vector(self):
        # Regression: a window with no JSON traffic used to emit a
        # truncated metric vector, so quiet-window drift reports
        # silently dropped every metric except json_share.  Both
        # windows now report the same shape-stable vector and the
        # undefined size statistics surface explicitly.
        from repro.analysis.drift import METRIC_NAMES

        busy = [
            make_log(timestamp=BASE_TS + index * 2.0)
            for index in range(30)
        ]
        quiet = [
            make_log(
                timestamp=BASE_TS + 60.0 + index * 2.0,
                mime_type="text/html",
                url="/page",
            )
            for index in range(30)
        ]
        result = StreamService(fast_config()).replay(busy + quiet)
        assert result.sealed_windows == 2
        first, second = result.snapshots
        # Shape-stable vectors: every drift metric present either way.
        assert set(METRIC_NAMES) < set(first.metrics)
        assert set(first.metrics) == set(second.metrics)
        # Quiet window: shares collapse to zero, sizes are undefined.
        assert second.metrics["json_share"] == 0.0
        assert second.metrics["mean_json_bytes"] is None
        assert first.metrics["mean_json_bytes"] is not None
        # The busy→quiet transition is visible for the *full* vector:
        # shares that moved plus the disappeared size statistics.
        drift = second.drift
        assert "json_share" in drift
        assert "mean_json_bytes" in drift
        assert drift["mean_json_bytes"]["after"] is None
        # JSONL round-trip: None serializes as null, not 0.
        line = json.loads(json.dumps(second.to_dict()))
        assert line["mean_json_bytes"] is None
        assert line["p50_json_bytes"] is None

    def test_on_snapshot_callback_fires_in_order(self):
        seen = []
        service = StreamService(
            fast_config(), on_snapshot=lambda s: seen.append(s.window_start)
        )
        service.replay(minute_logs(180))
        assert seen == sorted(seen)
        assert len(seen) >= 2

    def test_window_id_is_stable_and_unique(self):
        assert window_id((0.0, 60.0)) == window_id((0.0, 60.0))
        assert window_id((0.0, 60.0)) != window_id((60.0, 120.0))


class FailAfter:
    """Source that dies mid-stream: simulates a killed process."""

    def __init__(self, records, after):
        self.records = records
        self.after = after

    def __iter__(self):
        for index, record in enumerate(self.records):
            if index >= self.after:
                raise OSError("killed")
            yield record


class TestCheckpointResume:
    def test_kill_and_resume_never_double_counts(self, tmp_path):
        records = minute_logs(300)  # ten 60s windows
        ckpt = str(tmp_path / "ckpt")

        crashed = StreamService(fast_config(checkpoint_dir=ckpt))
        with pytest.raises(RuntimeError, match="ingest source failed"):
            crashed.run([FailAfter(records, after=180)])

        resumed = StreamService(
            fast_config(checkpoint_dir=ckpt), keep_accumulators=True
        )
        assert len(resumed.resumed_windows) >= 1  # crash left durable work
        result = resumed.replay(records)

        # No window appears both as resumed and as newly sealed.
        new_bounds = {
            (s.window_start, s.window_end) for s in result.snapshots
        }
        assert new_bounds.isdisjoint(set(resumed.resumed_windows))
        assert result.resumed_skips > 0
        assert result.late_dropped == 0

        # Checkpointed windows (old + new) merge to the exact batch state.
        merged = merge_accumulators(resumed.load_sealed_accumulators())
        batch = run_characterization(records)
        report = merged_characterization(merged)
        assert report.summary == batch.summary
        assert report.cacheability == batch.cacheability

    def test_rerun_on_complete_checkpoint_seals_nothing(self, tmp_path):
        records = minute_logs(120)
        ckpt = str(tmp_path / "ckpt")
        first = StreamService(fast_config(checkpoint_dir=ckpt)).replay(records)
        assert first.sealed_windows >= 1

        second = StreamService(fast_config(checkpoint_dir=ckpt))
        result = second.replay(records)
        assert result.sealed_windows == 0
        assert result.resumed_windows == first.sealed_windows
        assert result.resumed_skips == len(records)
        assert result.snapshots == []

    def test_torn_checkpoint_recomputes_that_window(self, tmp_path):
        records = minute_logs(120)
        ckpt = str(tmp_path / "ckpt")
        StreamService(fast_config(checkpoint_dir=ckpt)).replay(records)

        store_dir = tmp_path / "ckpt" / "stream-windows"
        victim = sorted(store_dir.glob("*.ckpt"))[0]
        victim.write_bytes(b"\x00torn")

        resumed = StreamService(fast_config(checkpoint_dir=ckpt))
        result = resumed.replay(records)
        assert result.sealed_windows == 1  # exactly the torn window
        assert result.resumed_skips + result.records_windowed == len(records)

    def test_without_checkpoint_dir_nothing_persists(self):
        service = StreamService(fast_config())
        service.replay(minute_logs(120))
        assert service.store is None
        assert service.load_sealed_accumulators() == []


class TestDeprecatedStreamingShim:
    def test_old_import_path_warns_but_works(self):
        import repro.analysis.streaming as old

        with pytest.warns(DeprecationWarning, match="repro.stream"):
            characterizer = old.WindowedCharacterizer(window_s=60.0)
        from repro.stream import WindowedCharacterizer

        assert isinstance(characterizer, WindowedCharacterizer)

    def test_package_reexport_does_not_warn(self, recwarn):
        from repro.analysis import WindowedCharacterizer  # noqa: F401

        assert not [
            w for w in recwarn if w.category is DeprecationWarning
        ]


class TestCli:
    def test_stream_args_parse(self):
        args = build_parser().parse_args(
            ["stream", "--window", "120", "--watermark", "30",
             "--ingest-workers", "2", "--queue-policy", "drop"]
        )
        assert args.command == "stream"
        assert args.window == 120.0
        assert args.watermark == 30.0
        assert args.ingest_workers == 2
        assert args.queue_policy == "drop"

    def test_stream_end_to_end(self, tmp_path, capsys):
        out = tmp_path / "win.jsonl"
        code = main(
            ["stream", "--requests", "800", "--window", "300",
             "--no-periods", "--no-predictions",
             "--emit", str(out), "--checkpoint-dir", str(tmp_path / "ck")]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "Stream windows" in output
        assert "sealed" in output
        assert out.exists() and out.read_text().count("\n") >= 1
        assert (tmp_path / "ck" / "stream-windows").is_dir()

    def test_stream_rejects_bad_worker_count(self):
        with pytest.raises(SystemExit):
            main(["stream", "--requests", "100", "--ingest-workers", "0"])


class TestRunStreamValidation:
    def test_requires_exactly_one_source(self):
        with pytest.raises(ValueError, match="exactly one"):
            run_stream()
        with pytest.raises(ValueError, match="exactly one"):
            run_stream(minute_logs(1), logs_dir="parts/")

    def test_iterable_goes_through_queue_when_requested(self):
        records = minute_logs(100)
        result = run_stream(
            iterable_source(records),
            window_s=60.0,
            detect_periods=False,
            predict_urls=False,
            queue_policy="drop",
            queue_capacity=10_000,
        )
        assert result.ingest is not None  # queue path, not replay
        assert result.records_windowed == len(records)

    def test_emitter_instance_is_not_closed(self, tmp_path):
        out = tmp_path / "win.jsonl"
        emitter = JsonlEmitter(str(out))
        run_stream(
            minute_logs(100),
            window_s=60.0,
            detect_periods=False,
            predict_urls=False,
            emit=emitter,
        )
        # Caller-owned emitter stays open for the next run.
        run_stream(
            minute_logs(100),
            window_s=60.0,
            detect_periods=False,
            predict_urls=False,
            emit=emitter,
        )
        emitter.close()
        assert out.read_text().count("\n") >= 2
