"""Tests for the bounded-backpressure ingest stage and its sources."""

from __future__ import annotations

import io
import json
import time

import pytest

from repro.logs.io import write_logs
from repro.logs.partition import write_partitioned
from repro.stream.ingest import IngestStage
from repro.stream.sources import (
    directory_sources,
    file_source,
    iterable_source,
    merged_directory_source,
    stdin_source,
)
from tests.conftest import make_log

BASE_TS = 1_559_347_200.0


def logs(count, start=0.0, step=1.0, edge="edge-1"):
    return [
        make_log(timestamp=BASE_TS + start + index * step, edge_id=edge)
        for index in range(count)
    ]


class TestIngestStage:
    def test_single_source_preserves_order(self):
        records = logs(50)
        stage = IngestStage([iterable_source(records)])
        assert list(stage.records()) == records
        stats = stage.stats.snapshot()
        assert stats["ingested"] == 50
        assert stats["delivered"] == 50
        assert stats["dropped"] == 0

    def test_multiple_sources_deliver_everything(self):
        first, second, third = logs(20), logs(30, start=100), logs(10, start=200)
        stage = IngestStage(
            [iter(first), iter(second), iter(third)], workers=2
        )
        delivered = list(stage.records())
        assert len(delivered) == 60
        assert sorted(r.timestamp for r in delivered) == sorted(
            r.timestamp for r in first + second + third
        )

    def test_events_tag_records_and_mark_source_ends(self):
        stage = IngestStage([iterable_source(logs(3)), iterable_source(logs(2))])
        by_source = {0: 0, 1: 0}
        ends = set()
        for source, record in stage.events():
            if record is None:
                ends.add(source)
            else:
                by_source[source] += 1
        assert by_source == {0: 3, 1: 2}
        assert ends == {0, 1}

    def test_block_policy_is_lossless_with_tiny_queue(self):
        records = logs(500)
        stage = IngestStage([iterable_source(records)], capacity=4)
        delivered = 0
        for _ in stage.records():
            delivered += 1
        assert delivered == 500
        assert stage.stats.dropped == 0
        assert stage.stats.queue_peak <= 4

    def test_drop_policy_sheds_and_counts(self):
        records = logs(2_000)
        stage = IngestStage(
            [iterable_source(records)], capacity=2, policy="drop"
        )
        delivered = 0
        for _ in stage.records():
            time.sleep(0.001)  # slow consumer forces the queue full
            delivered += 1
        stats = stage.stats.snapshot()
        assert stats["dropped"] > 0
        assert delivered + stats["dropped"] == 2_000
        assert stats["ingested"] == delivered

    def test_worker_error_propagates_after_drain(self):
        def failing():
            yield from logs(5)
            raise OSError("socket reset")

        stage = IngestStage([failing()])
        consumed = []
        with pytest.raises(RuntimeError, match="ingest source failed") as info:
            for record in stage.records():
                consumed.append(record)
        assert len(consumed) == 5  # queued records drain before the raise
        assert isinstance(info.value.__cause__, OSError)

    def test_consuming_twice_is_an_error(self):
        stage = IngestStage([iterable_source(logs(1))])
        list(stage.records())
        with pytest.raises(RuntimeError, match="once"):
            next(stage.records())

    def test_validation(self):
        with pytest.raises(ValueError):
            IngestStage([], capacity=0)
        with pytest.raises(ValueError):
            IngestStage([], policy="spill")
        with pytest.raises(ValueError):
            IngestStage([], workers=0)

    def test_workers_never_exceed_sources(self):
        stage = IngestStage([iterable_source(logs(2))], workers=8)
        assert stage.workers == 1
        assert list(stage.records()) == logs(2)


class TestSources:
    def test_file_source(self, tmp_path):
        records = logs(7)
        path = tmp_path / "edge.jsonl"
        write_logs(records, path)
        assert list(file_source(path)) == records

    def test_file_source_skips_torn_lines(self, tmp_path):
        path = tmp_path / "edge.jsonl"
        write_logs(logs(2), path)
        with open(path, "a") as handle:
            handle.write('{"half a rec')
        assert len(list(file_source(path))) == 2

    def test_directory_sources_one_per_edge(self, tmp_path):
        records = logs(10, edge="edge-1") + logs(10, start=50, edge="edge-2")
        write_partitioned(records, tmp_path / "parts")
        sources = directory_sources(tmp_path / "parts")
        assert len(sources) == 2
        streams = [list(source) for source in sources]
        for stream in streams:
            assert len({r.edge_id for r in stream}) == 1
            timestamps = [r.timestamp for r in stream]
            assert timestamps == sorted(timestamps)
        assert sum(len(s) for s in streams) == 20

    def test_merged_directory_source_is_time_ordered(self, tmp_path):
        records = logs(15, edge="edge-1") + logs(15, start=0.5, edge="edge-2")
        write_partitioned(records, tmp_path / "parts")
        merged = list(merged_directory_source(tmp_path / "parts"))
        timestamps = [r.timestamp for r in merged]
        assert timestamps == sorted(timestamps)
        assert len(merged) == 30

    def test_stdin_source_parses_jsonl(self):
        records = logs(3)
        text = "\n".join(json.dumps(r.to_dict()) for r in records) + "\n"
        assert list(stdin_source(io.StringIO(text))) == records

    def test_stdin_source_skips_garbage_by_default(self):
        good = json.dumps(logs(1)[0].to_dict())
        stream = io.StringIO(f"not json\n{good}\n\n")
        assert len(list(stdin_source(stream))) == 1

    def test_stdin_source_raise_mode(self):
        stream = io.StringIO("not json\n")
        with pytest.raises(ValueError, match="line 1"):
            list(stdin_source(stream, on_error="raise"))
