"""Differential stream-vs-batch harness: the subsystem's exactness bar.

The stream service's headline guarantee mirrors the engine's: replay
a dataset through event-time windows — even shuffled within a bounded
disorder budget, even through the threaded multi-source ingest queue —
and merging every sealed window's accumulator reproduces the batch
pipelines *identically*, not approximately.  These tests replay one
seeded workload at two window sizes and compare characterization,
periodicity and ngram outputs field by field against the serial batch
references.

Window size must not matter because window accumulators are the
engine's mergeable states and merge is associative; disorder must not
matter because window assignment is a pure function of the event
timestamp; the ingest queue must not matter because per-source
watermark frontiers keep interleaving from dropping records.
"""

from __future__ import annotations

import random

import pytest

from repro.core.pipeline import (
    run_characterization,
    run_pattern_analysis,
    run_stream,
)
from repro.logs.partition import write_partitioned
from repro.periodicity.detector import DetectorConfig
from repro.stream import merge_accumulators, merged_pattern_report
from repro.stream.accumulators import merged_characterization
from repro.synth.workload import WorkloadBuilder, long_term_config
from tests.test_engine_differential import assert_periodicity_identical

DETECTOR = DetectorConfig(permutations=10)

#: Bounded disorder: each record arrives up to this much late, so a
#: watermark lag of the same size must make nothing late.
DISORDER_S = 30.0
WINDOW_SIZES = [300.0, 1_800.0]


@pytest.fixture(scope="module")
def logs():
    return WorkloadBuilder(long_term_config(8_000, seed=11)).build().logs


@pytest.fixture(scope="module")
def shuffled(logs):
    """The same records, arrival-ordered with bounded disorder."""
    rng = random.Random(2019)
    return sorted(
        logs, key=lambda record: record.timestamp + rng.uniform(0, DISORDER_S)
    )


@pytest.fixture(scope="module")
def serial_characterization(logs):
    return run_characterization(logs)


@pytest.fixture(scope="module")
def serial_patterns(logs):
    return run_pattern_analysis(logs, detector_config=DETECTOR)


def stream_merge(records, window_s, **kwargs):
    """Replay through the stream service, merge all sealed windows."""
    result = run_stream(
        records,
        window_s=window_s,
        watermark_lag_s=DISORDER_S,
        detect_periods=False,  # per-window analysis is not under test
        predict_urls=False,
        keep_accumulators=True,
        **kwargs,
    )
    assert result.late_dropped == 0, "disorder stayed within the lag"
    return result, merge_accumulators(result.accumulators)


class TestStreamEqualsBatch:
    @pytest.mark.parametrize("window_s", WINDOW_SIZES)
    def test_characterization(
        self, shuffled, serial_characterization, window_s
    ):
        result, merged = stream_merge(shuffled, window_s)
        assert result.records_windowed == len(shuffled)
        report = merged_characterization(merged)
        serial = serial_characterization
        assert report.summary == serial.summary
        assert report.traffic_source == serial.traffic_source
        assert report.request_type == serial.request_type
        assert report.cacheability == serial.cacheability

    @pytest.mark.parametrize("window_s", WINDOW_SIZES)
    def test_patterns(self, shuffled, serial_patterns, window_s):
        _, merged = stream_merge(shuffled, window_s)
        report = merged_pattern_report(merged, detector_config=DETECTOR)
        assert_periodicity_identical(
            serial_patterns.periodicity, report.periodicity
        )
        # Frozen-dataclass equality per (n, k, clustered) cell.
        assert report.ngram == serial_patterns.ngram

    def test_window_count_scales_with_size(self, shuffled):
        small, _ = stream_merge(shuffled, WINDOW_SIZES[0])
        large, _ = stream_merge(shuffled, WINDOW_SIZES[1])
        assert small.sealed_windows > large.sealed_windows >= 1

    def test_workload_is_not_vacuous(self, serial_patterns):
        assert len(serial_patterns.periodicity.object_periods()) >= 3
        assert any(r.correct > 0 for r in serial_patterns.ngram.values())


class TestThreadedIngestEqualsBatch:
    """The same exactness through the real multi-source ingest queue."""

    def test_partitioned_directory_any_worker_count(
        self, logs, serial_characterization, tmp_path_factory
    ):
        root = tmp_path_factory.mktemp("stream-diff") / "parts"
        write_partitioned(logs, root)
        for workers in (1, 3):
            result = run_stream(
                logs_dir=str(root),
                window_s=WINDOW_SIZES[0],
                watermark_lag_s=DISORDER_S,
                detect_periods=False,
                predict_urls=False,
                ingest_workers=workers,
                queue_capacity=256,
                keep_accumulators=True,
            )
            assert result.late_dropped == 0
            assert result.records_windowed == len(logs)
            merged = merge_accumulators(result.accumulators)
            report = merged_characterization(merged)
            assert report.summary == serial_characterization.summary
            assert (
                report.cacheability == serial_characterization.cacheability
            )
