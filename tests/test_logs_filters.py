"""Unit tests for repro.logs.filters."""

import pytest

from repro.logs.filters import (
    chain_filters,
    content_type_in,
    domains_in,
    html_only,
    json_only,
    methods_in,
    status_class,
    time_window,
)
from repro.logs.record import HttpMethod
from tests.conftest import make_log


@pytest.fixture
def mixed_logs():
    return [
        make_log(mime_type="application/json", timestamp=100.0),
        make_log(mime_type="text/html", timestamp=200.0, domain="b.example.com"),
        make_log(mime_type="image/jpeg", timestamp=300.0, status=404),
        make_log(
            mime_type="application/json",
            timestamp=400.0,
            method=HttpMethod.POST,
            request_bytes=10,
        ),
    ]


class TestContentTypeFilters:
    def test_json_only(self, mixed_logs):
        out = list(json_only(mixed_logs))
        assert len(out) == 2
        assert all(record.is_json for record in out)

    def test_html_only(self, mixed_logs):
        out = list(html_only(mixed_logs))
        assert [record.mime_type for record in out] == ["text/html"]

    def test_content_type_in_multiple(self, mixed_logs):
        out = list(content_type_in(mixed_logs, ["text/html", "image/jpeg"]))
        assert len(out) == 2

    def test_content_type_in_case_insensitive(self, mixed_logs):
        out = list(content_type_in(mixed_logs, ["Application/JSON"]))
        assert len(out) == 2


class TestTimeWindow:
    def test_both_bounds(self, mixed_logs):
        out = list(time_window(mixed_logs, start=150.0, end=350.0))
        assert [record.timestamp for record in out] == [200.0, 300.0]

    def test_end_is_exclusive(self, mixed_logs):
        out = list(time_window(mixed_logs, start=100.0, end=400.0))
        assert all(record.timestamp < 400.0 for record in out)

    def test_start_is_inclusive(self, mixed_logs):
        out = list(time_window(mixed_logs, start=100.0))
        assert len(out) == 4

    def test_unbounded(self, mixed_logs):
        assert len(list(time_window(mixed_logs))) == 4


class TestOtherFilters:
    def test_domains_in(self, mixed_logs):
        out = list(domains_in(mixed_logs, {"b.example.com"}))
        assert len(out) == 1

    def test_methods_in_case_insensitive(self, mixed_logs):
        out = list(methods_in(mixed_logs, ["post"]))
        assert len(out) == 1

    def test_status_class(self, mixed_logs):
        assert len(list(status_class(mixed_logs, 4))) == 1
        assert len(list(status_class(mixed_logs, 2))) == 3

    def test_status_class_validates_input(self, mixed_logs):
        with pytest.raises(ValueError):
            list(status_class(mixed_logs, 9))

    def test_chain_filters(self, mixed_logs):
        out = list(
            chain_filters(
                mixed_logs,
                lambda r: r.is_json,
                lambda r: r.method is HttpMethod.POST,
            )
        )
        assert len(out) == 1

    def test_filters_are_lazy(self, mixed_logs):
        iterator = json_only(iter(mixed_logs))
        assert next(iterator).is_json
