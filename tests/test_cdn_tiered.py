"""Tests for the edge→parent→origin cache hierarchy."""

import pytest

from repro.cdn.cache import LruTtlCache
from repro.cdn.edge import EdgeServer
from repro.cdn.network import LatencyModel
from repro.cdn.origin import OriginFleet
from repro.logs.record import CacheStatus
from repro.synth.clients import Client
from repro.synth.domains import CachePolicyKind, DomainPopulation
from repro.synth.rng import substream
from repro.synth.sessions import RequestEvent
from repro.synth.sizes import SizeModel


@pytest.fixture(scope="module")
def domains():
    return DomainPopulation(num_domains=30, seed=77)


@pytest.fixture
def hierarchy():
    """Two edges sharing one parent cache and one origin fleet."""
    origins = OriginFleet()
    parent = LruTtlCache(1 << 26)
    size_model = SizeModel(substream(9, "sz"))

    def make(edge_id):
        return EdgeServer(
            edge_id,
            LruTtlCache(1 << 24),
            origins,
            LatencyModel(substream(9, "lat", edge_id)),
            size_model,
            substream(9, "edge", edge_id),
            parent=parent,
        )

    return make("edge-a"), make("edge-b"), parent, origins


@pytest.fixture
def client_a():
    return Client("aaaa1111", "NewsReader/1.0 (iPhone; iOS 13.1)", "mobile_app", 1.0)


@pytest.fixture
def client_b():
    return Client("bbbb2222", "FitTrack/2.0 (Android 10) okhttp/3.12.1",
                  "mobile_app", 1.0)


def cacheable_domain(domains):
    for domain in domains:
        if domain.policy.kind is CachePolicyKind.ALWAYS:
            return domain
    pytest.skip("no ALWAYS domain")


def uncacheable_domain(domains):
    for domain in domains:
        if domain.policy.kind is CachePolicyKind.NEVER:
            return domain
    pytest.skip("no NEVER domain")


class TestHierarchy:
    def test_sibling_miss_served_from_parent(
        self, hierarchy, domains, client_a, client_b
    ):
        edge_a, edge_b, parent, origins = hierarchy
        domain = cacheable_domain(domains)
        endpoint = domain.manifests[0]
        edge_a.serve(RequestEvent(0.0, client_a, domain, endpoint))
        assert origins.total_requests == 1

        served = edge_b.serve(RequestEvent(1.0, client_b, domain, endpoint))
        # Still a miss at edge-b, but the parent spared the origin.
        assert served.log.cache_status is CacheStatus.MISS
        assert not served.origin_fetch
        assert origins.total_requests == 1
        assert edge_b.parent_hits == 1

    def test_parent_populated_on_origin_fetch(
        self, hierarchy, domains, client_a
    ):
        edge_a, _, parent, _ = hierarchy
        domain = cacheable_domain(domains)
        endpoint = domain.manifests[0]
        object_id = f"{domain.name}{endpoint.url}"
        edge_a.serve(RequestEvent(0.0, client_a, domain, endpoint))
        assert parent.contains_fresh(object_id, 1.0)

    def test_parent_hit_latency_between_edge_hit_and_origin(
        self, hierarchy, domains, client_a, client_b
    ):
        edge_a, edge_b, _, _ = hierarchy
        domain = cacheable_domain(domains)
        endpoint = domain.manifests[0]
        origin_served = edge_a.serve(RequestEvent(0.0, client_a, domain, endpoint))
        parent_served = edge_b.serve(RequestEvent(1.0, client_b, domain, endpoint))
        hit_served = edge_b.serve(RequestEvent(2.0, client_b, domain, endpoint))
        assert hit_served.latency.middle_mile_s == 0.0
        assert 0.0 < parent_served.latency.middle_mile_s
        # Regional tier sits well inside the origin distance on average;
        # single draws are noisy so compare against the scaled model.
        assert parent_served.latency.middle_mile_s < origin_served.latency.middle_mile_s * 2

    def test_uncacheable_bypasses_parent(self, hierarchy, domains, client_a):
        edge_a, _, parent, origins = hierarchy
        domain = uncacheable_domain(domains)
        endpoint = domain.manifests[0]
        object_id = f"{domain.name}{endpoint.url}"
        edge_a.serve(RequestEvent(0.0, client_a, domain, endpoint))
        assert not parent.contains_fresh(object_id, 1.0)
        assert origins.total_requests == 1

    def test_edge_hit_never_touches_parent(self, hierarchy, domains, client_a):
        edge_a, _, parent, _ = hierarchy
        domain = cacheable_domain(domains)
        endpoint = domain.manifests[0]
        edge_a.serve(RequestEvent(0.0, client_a, domain, endpoint))
        lookups_after_miss = parent.stats.lookups
        edge_a.serve(RequestEvent(1.0, client_a, domain, endpoint))
        assert parent.stats.lookups == lookups_after_miss

    def test_no_parent_means_origin_on_every_miss(self, domains, client_a):
        origins = OriginFleet()
        edge = EdgeServer(
            "edge-solo",
            LruTtlCache(1 << 24),
            origins,
            LatencyModel(substream(9, "lat2")),
            SizeModel(substream(9, "sz2")),
            substream(9, "edge2"),
        )
        domain = cacheable_domain(domains)
        ttl = domain.policy.ttl_seconds
        edge.serve(RequestEvent(0.0, client_a, domain, domain.manifests[0]))
        edge.serve(
            RequestEvent(ttl + 1.0, client_a, domain, domain.manifests[0])
        )
        assert origins.total_requests == 2
        assert edge.parent_hits == 0

    def test_origin_offload_improves_with_parent(
        self, domains, client_a, client_b
    ):
        """End-to-end: the hierarchy absorbs cross-edge redundancy."""

        def run(with_parent):
            origins = OriginFleet()
            parent = LruTtlCache(1 << 26) if with_parent else None
            size_model = SizeModel(substream(10, "sz"))
            edges = [
                EdgeServer(
                    f"edge-{i}",
                    LruTtlCache(1 << 24),
                    origins,
                    LatencyModel(substream(10, "lat", str(i))),
                    size_model,
                    substream(10, "edge", str(i)),
                    parent=parent,
                )
                for i in range(4)
            ]
            clients = [client_a, client_b] * 2
            served = 0
            for domain in domains:
                if domain.policy.kind is not CachePolicyKind.ALWAYS:
                    continue
                for endpoint in domain.manifests:
                    for index, edge in enumerate(edges):
                        edge.serve(
                            RequestEvent(
                                float(served), clients[index], domain, endpoint
                            )
                        )
                        served += 1
            return origins.total_requests

        assert run(with_parent=True) < run(with_parent=False)
