"""Tests for repro.analysis: characterization, sizes, cacheability, trend."""

import pytest

from repro.analysis.cacheability import (
    CacheabilityHeatmap,
    DomainCacheability,
    analyze_cacheability,
)
from repro.analysis.characterize import characterize
from repro.analysis.sizes import SizeComparison, analyze_sizes, compare_sizes
from repro.analysis.trend import analyze_trend, snapshot_ratio
from repro.logs.record import CacheStatus, HttpMethod
from repro.synth.trend import TrendModel
from tests.conftest import make_log


class TestCharacterize:
    def test_device_shares_sum_to_one(self, short_json_logs):
        source, _ = characterize(short_json_logs, json_only=False)
        assert sum(source.device_shares().values()) == pytest.approx(1.0)

    def test_figure3_shape(self, short_json_logs):
        """Mobile dominates; embedded ~12%; unknown ~24% (Figure 3)."""
        source, _ = characterize(short_json_logs, json_only=False)
        shares = source.device_shares()
        assert shares["mobile"] > 0.45
        assert 0.06 < shares["embedded"] < 0.20
        assert 0.15 < shares["unknown"] < 0.35

    def test_non_browser_majority(self, short_json_logs):
        source, _ = characterize(short_json_logs, json_only=False)
        assert source.non_browser_fraction > 0.8

    def test_no_embedded_browser_traffic(self, short_json_logs):
        source, _ = characterize(short_json_logs, json_only=False)
        assert source.embedded_browser_fraction == 0.0

    def test_mobile_app_at_least_half(self, short_json_logs):
        source, _ = characterize(short_json_logs, json_only=False)
        assert source.mobile_app_fraction > 0.45

    def test_get_majority(self, short_json_logs):
        _, request_type = characterize(short_json_logs, json_only=False)
        assert 0.75 < request_type.get_fraction < 0.92

    def test_post_dominates_non_get(self, short_json_logs):
        _, request_type = characterize(short_json_logs, json_only=False)
        assert request_type.post_share_of_non_get > 0.9

    def test_json_filter_applied(self, short_dataset):
        all_logs = short_dataset.logs
        source, _ = characterize(all_logs, json_only=True)
        json_count = sum(1 for record in all_logs if record.is_json)
        assert source.total_requests == json_count

    def test_ua_string_mix_mobile_dominant(self, short_json_logs):
        source, _ = characterize(short_json_logs, json_only=False)
        mix = source.ua_string_shares()
        assert mix.get("mobile", 0) > max(
            mix.get("desktop", 0), mix.get("embedded", 0)
        )

    def test_empty_logs(self):
        source, request_type = characterize([])
        assert source.total_requests == 0
        assert source.device_shares() == {}
        assert request_type.get_fraction == 0.0


class TestSizes:
    def test_distributions_collected(self, short_dataset):
        distributions = analyze_sizes(short_dataset.logs)
        assert distributions["application/json"].count > 0
        assert distributions["text/html"].count > 0

    def test_comparison_shape(self, short_dataset):
        """JSON smaller at p50, dramatically smaller at p75 (§4)."""
        comparison = compare_sizes(short_dataset.logs)
        assert 0.0 < comparison.smaller_at_p50 < 0.5
        assert comparison.smaller_at_p75 > 0.7
        assert comparison.smaller_at_p75 > comparison.smaller_at_p50

    def test_summary_keys(self, short_dataset):
        distributions = analyze_sizes(short_dataset.logs)
        summary = distributions["application/json"].summary()
        for key in ("count", "mean", "p50", "p75"):
            assert key in summary

    def test_percentile_validates_empty(self):
        distributions = analyze_sizes([])
        with pytest.raises(ValueError):
            distributions["application/json"].percentile(50)


class TestCacheability:
    def test_request_level_uncacheable(self, short_json_logs):
        stats, _ = analyze_cacheability(short_json_logs, json_only=False)
        assert abs(stats.uncacheable_fraction - 0.55) < 0.15

    def test_origin_fraction_includes_misses(self):
        logs = [
            make_log(cache_status=CacheStatus.HIT),
            make_log(cache_status=CacheStatus.MISS),
            make_log(cache_status=CacheStatus.NO_STORE, ttl_seconds=None),
        ]
        stats, _ = analyze_cacheability(logs, json_only=False)
        assert stats.origin_fraction == pytest.approx(2 / 3)

    def test_heatmap_marginals(self, short_dataset, short_json_logs):
        categories = {d.name: d.category.value for d in short_dataset.domains}
        _, heatmap = analyze_cacheability(short_json_logs, categories,
                                          json_only=False)
        shares = heatmap.bucket_shares()
        # Figure 4: ~50% never-cacheable, ~30% always-cacheable domains.
        assert abs(shares["never"] - 0.50) < 0.15
        assert abs(shares["always"] - 0.30) < 0.15

    def test_category_story_holds(self, short_dataset, short_json_logs):
        """Financial/Streaming/Gaming less cacheable than News/Sports."""
        categories = {d.name: d.category.value for d in short_dataset.domains}
        _, heatmap = analyze_cacheability(short_json_logs, categories,
                                          json_only=False)
        dynamic = [
            heatmap.category_cacheable_share(c)
            for c in ("Financial Services", "Streaming", "Gaming")
            if any((s.category or "") == c for s in heatmap.domains.values())
        ]
        static = [
            heatmap.category_cacheable_share(c)
            for c in ("News/Media", "Sports")
            if any((s.category or "") == c for s in heatmap.domains.values())
        ]
        if dynamic and static:
            assert max(dynamic) < min(static)

    def test_bucket_boundaries(self):
        assert CacheabilityHeatmap.bucket_for(0.0) == "never"
        assert CacheabilityHeatmap.bucket_for(1.0) == "always"
        assert CacheabilityHeatmap.bucket_for(0.5) == "mid"
        assert CacheabilityHeatmap.bucket_for(0.1) == "low"
        assert CacheabilityHeatmap.bucket_for(0.9) == "high"

    def test_unknown_category_defaulted(self):
        heatmap = CacheabilityHeatmap()
        heatmap.add_domain(DomainCacheability("x.com", None, 1, 2))
        assert "Unknown" in heatmap.cells

    def test_rows_normalized(self, short_dataset, short_json_logs):
        categories = {d.name: d.category.value for d in short_dataset.domains}
        _, heatmap = analyze_cacheability(short_json_logs, categories,
                                          json_only=False)
        for _, buckets in heatmap.rows():
            assert sum(buckets.values()) == pytest.approx(1.0)


class TestTrend:
    def test_figure1_growth(self):
        analysis = analyze_trend(TrendModel(seed=0).series())
        assert analysis.end_ratio > 4.0
        assert analysis.growth_factor > 3.0

    def test_crossover_happens_early(self):
        analysis = analyze_trend(TrendModel(seed=0).series())
        assert analysis.crossover_month().startswith("2016")

    def test_smoothed_trend_monotonic(self):
        analysis = analyze_trend(TrendModel(seed=0).series())
        assert analysis.is_monotonic_trend()

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            analyze_trend([])

    def test_snapshot_ratio(self, short_dataset):
        ratio = snapshot_ratio(short_dataset.logs)
        assert 2.5 < ratio < 8.0

    def test_snapshot_ratio_no_html(self):
        assert snapshot_ratio([make_log()]) == float("inf")
