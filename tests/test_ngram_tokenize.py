"""Unit tests for repro.ngram.tokenize and .clustering."""

import pytest

from repro.ngram.clustering import UrlClusterer, cluster_segment, cluster_url
from repro.ngram.tokenize import tokenize_url


class TestTokenize:
    def test_path_segments(self):
        tokenized = tokenize_url("/api/v1/item/42")
        assert tokenized.path_segments == ("api", "v1", "item", "42")

    def test_query_args_in_order(self):
        tokenized = tokenize_url("/search?q=x&page=2")
        assert tokenized.query_args == (("q", "x"), ("page", "2"))

    def test_bare_query_key(self):
        tokenized = tokenize_url("/a?debug")
        assert tokenized.query_args == (("debug", ""),)

    def test_fragment_stripped(self):
        tokenized = tokenize_url("/a/b#section")
        assert tokenized.path_segments == ("a", "b")

    def test_empty_segments_removed(self):
        tokenized = tokenize_url("//a///b/")
        assert tokenized.path_segments == ("a", "b")

    def test_render_round_trip(self):
        url = "/api/v2/item/7?page=3&sort=asc"
        assert tokenize_url(url).render() == url

    def test_render_without_query(self):
        assert tokenize_url("/a/b").render() == "/a/b"

    def test_no_leading_slash_tolerated(self):
        assert tokenize_url("a/b").path_segments == ("a", "b")


class TestClusterSegment:
    def test_numeric(self):
        assert cluster_segment("12345") == "<num>"

    def test_uuid(self):
        assert cluster_segment("123e4567-e89b-12d3-a456-426614174000") == "<uuid>"

    def test_hex(self):
        assert cluster_segment("deadbeefcafe1234") == "<hex>"

    def test_mixed_id(self):
        assert cluster_segment("user_4812abc") == "<id>"

    def test_plain_word_unchanged(self):
        assert cluster_segment("stories") == "stories"

    def test_version_tag_unchanged(self):
        # Short tokens like "v1" are structure, not identifiers.
        assert cluster_segment("v1") == "v1"


class TestClusterUrl:
    def test_item_ids_clustered(self):
        assert cluster_url("/api/v1/item/48121") == "/api/v1/item/<num>"

    def test_same_shape_same_cluster(self):
        assert cluster_url("/api/v1/item/1") == cluster_url("/api/v1/item/999")

    def test_arg_values_typed(self):
        assert cluster_url("/search?q=trending") == "/search?q=<str>"
        assert cluster_url("/stories?page=3") == "/stories?page=<num>"

    def test_arg_names_preserved(self):
        clustered = cluster_url("/x?uid=8&mode=full")
        assert "uid=" in clustered and "mode=" in clustered

    def test_args_sorted_for_stability(self):
        assert cluster_url("/x?b=1&a=2") == cluster_url("/x?a=9&b=8")

    def test_idempotent(self):
        url = "/api/v1/item/48121?page=3"
        once = cluster_url(url)
        assert cluster_url(once) == once

    def test_manifest_url_unchanged(self):
        assert cluster_url("/api/v1/home") == "/api/v1/home"


class TestMemoizingClusterer:
    def test_same_result_as_function(self):
        clusterer = UrlClusterer()
        url = "/api/v1/item/5?page=2"
        assert clusterer(url) == cluster_url(url)

    def test_memo_hit_identity(self):
        clusterer = UrlClusterer()
        url = "/api/v1/item/5"
        assert clusterer(url) is clusterer(url)

    def test_memo_bound(self):
        clusterer = UrlClusterer(max_entries=10)
        for i in range(25):
            clusterer(f"/api/v1/item/{i}")
        assert len(clusterer._memo) <= 11
