"""Unit tests for repro.useragent.appid."""

import pytest

from repro.useragent.appid import (
    AppIdentity,
    aggregate_apps,
    identify_app,
)
from tests.conftest import make_log


class TestIdentifyApp:
    def test_ios_app_with_cfnetwork(self):
        identity = identify_app(
            "NewsReader/5.2.1 (iPhone; iOS 13.1; Scale/3.00) CFNetwork/1107.1 "
            "Darwin/19.0.0"
        )
        assert identity.name == "NewsReader"
        assert identity.version == "5.2.1"
        assert identity.identified

    def test_android_app_over_okhttp(self):
        identity = identify_app("FitTrack/2.1.0 (Android 10) okhttp/3.12.1")
        assert identity.name == "FitTrack"

    def test_webview_app_token_after_browser(self):
        identity = identify_app(
            "Mozilla/5.0 (Linux; Android 9; SM-G960F; wv) AppleWebKit/537.36 "
            "(KHTML, like Gecko) Version/4.0 Chrome/74.0.3729.157 Mobile "
            "Safari/537.36 ShopFast/3.1.0"
        )
        assert identity.name == "ShopFast"
        assert identity.version == "3.1.0"

    def test_plain_browser_is_unidentified(self):
        identity = identify_app(
            "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 "
            "(KHTML, like Gecko) Chrome/76.0.3809.132 Safari/537.36"
        )
        assert not identity.identified

    def test_bare_library_is_unidentified(self):
        assert not identify_app("okhttp/3.12.1").identified
        assert not identify_app("python-requests/2.22.0").identified
        assert not identify_app("Dalvik/2.1.0 (Linux; U; Android 9)").identified

    def test_bundle_id_normalized(self):
        identity = identify_app("com.example.newsreader/512 CFNetwork/1107.1")
        assert identity.name == "newsreader"

    def test_missing_ua(self):
        assert not identify_app(None).identified
        assert not identify_app("").identified

    def test_version_only_token_skipped(self):
        assert not identify_app("5.0 (junk)").identified

    def test_unidentified_singleton_name(self):
        assert AppIdentity.unidentified().name == "(unidentified)"


class TestAggregateApps:
    def _logs(self):
        uas = {
            "NewsReader/5.2.1 (iPhone; iOS 13.1) CFNetwork/1107.1": 5,
            "NewsReader/5.3.0 (iPhone; iOS 13.3) CFNetwork/1121.2": 3,
            "FitTrack/2.1.0 (Android 10) okhttp/3.12.1": 4,
            "okhttp/3.12.1": 2,
        }
        logs = []
        t = 0.0
        for ua, count in uas.items():
            for _ in range(count):
                logs.append(make_log(timestamp=t, user_agent=ua,
                                     response_bytes=100))
                t += 1.0
        return logs

    def test_request_counts(self):
        report = aggregate_apps(self._logs())
        assert report.requests_per_app["NewsReader"] == 8
        assert report.requests_per_app["FitTrack"] == 4

    def test_identified_fraction(self):
        report = aggregate_apps(self._logs())
        assert report.identified_fraction == pytest.approx(12 / 14)

    def test_top_apps_excludes_unidentified(self):
        report = aggregate_apps(self._logs())
        names = [name for name, _ in report.top_apps()]
        assert names == ["NewsReader", "FitTrack"]

    def test_version_spread(self):
        report = aggregate_apps(self._logs())
        assert report.version_spread("NewsReader") == 2
        assert report.version_spread("FitTrack") == 1

    def test_bytes_aggregated(self):
        report = aggregate_apps(self._logs())
        assert report.bytes_per_app["NewsReader"] == 800

    def test_json_filter(self):
        logs = self._logs() + [
            make_log(user_agent="OtherApp/1.0 (iPhone; iOS 13.1)",
                     mime_type="text/html")
        ]
        report = aggregate_apps(logs)
        assert "OtherApp" not in report.requests_per_app

    def test_on_synthetic_dataset(self, short_json_logs):
        report = aggregate_apps(short_json_logs, json_only=False)
        # A majority of JSON traffic should be attributable to apps —
        # mobile/embedded apps dominate the population.
        assert report.identified_fraction > 0.5
        assert len(report.top_apps(5)) == 5
