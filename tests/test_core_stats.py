"""Cross-module consistency for the canonical percentile.

``repro.core.stats.percentile`` is the single repo-wide percentile
definition (numpy linear interpolation between closest ranks).  Both
exact-sample callers — ``repro.cdn.metrics`` and
``repro.analysis.drift`` — must route through it, and the
bounded-memory sketch estimate must stay within its documented error
of the same definition.
"""

import random

import pytest

from repro.cdn import metrics as cdn_metrics
from repro.core import stats
from repro.obs.sketch import QuantileSketch


class TestCanonicalPercentile:
    def test_linear_interpolation_definition(self):
        assert stats.percentile([1, 2, 3, 4], 50) == 2.5
        assert stats.percentile([10], 0) == 10
        assert stats.percentile([10], 100) == 10
        assert stats.percentile([0, 10], 25) == 2.5

    def test_validates_range_and_empty(self):
        with pytest.raises(ValueError):
            stats.percentile([], 50)
        with pytest.raises(ValueError):
            stats.percentile([1.0], -1)
        with pytest.raises(ValueError):
            stats.percentile([1.0], 101)

    def test_order_invariant(self):
        data = [5.0, 1.0, 4.0, 2.0, 3.0]
        assert stats.percentile(data, 40) == stats.percentile(
            sorted(data), 40
        )


class TestCrossModuleConsistency:
    def test_cdn_metrics_is_the_same_function(self):
        data = [random.Random(3).uniform(0, 100) for _ in range(500)]
        for q in (0, 10, 50, 90, 95, 99, 100):
            assert cdn_metrics.percentile(data, q) == stats.percentile(
                data, q
            )

    def test_drift_p50_matches_canonical(self):
        # traffic_metrics computes p50_json_bytes via the canonical
        # helper — spot-check against a hand-built collection.
        from repro.analysis.drift import traffic_metrics
        from tests.conftest import make_log

        logs = [
            make_log(timestamp=float(i), response_bytes=size)
            for i, size in enumerate([100, 200, 300, 400])
        ]
        metrics = traffic_metrics(logs)
        assert metrics["p50_json_bytes"] == stats.percentile(
            [100, 200, 300, 400], 50
        )

    def test_sketch_estimate_within_documented_error(self):
        rng = random.Random(11)
        data = [rng.lognormvariate(0.0, 1.5) for _ in range(20_000)]
        sketch = QuantileSketch().update(data)
        for q in (50, 90, 99):
            exact = stats.percentile(data, q)
            estimate = sketch.quantile(q / 100.0)
            assert stats.relative_error(estimate, exact) <= (
                sketch.growth - 1.0 + 1e-9
            )
