"""Unit tests for repro.logs.record."""

import pytest

from repro.logs.record import (
    CacheStatus,
    HttpMethod,
    RequestLog,
    client_key,
    object_key,
)
from tests.conftest import make_log


class TestHttpMethod:
    def test_get_is_download(self):
        assert HttpMethod.GET.is_download()
        assert not HttpMethod.GET.is_upload()

    def test_head_is_download(self):
        assert HttpMethod.HEAD.is_download()

    def test_post_is_upload(self):
        assert HttpMethod.POST.is_upload()
        assert not HttpMethod.POST.is_download()

    def test_put_and_patch_are_uploads(self):
        assert HttpMethod.PUT.is_upload()
        assert HttpMethod.PATCH.is_upload()

    def test_delete_is_neither(self):
        assert not HttpMethod.DELETE.is_upload()
        assert not HttpMethod.DELETE.is_download()

    def test_from_string_value(self):
        assert HttpMethod("GET") is HttpMethod.GET


class TestCacheStatus:
    def test_hit_and_miss_are_cacheable(self):
        assert CacheStatus.HIT.cacheable
        assert CacheStatus.MISS.cacheable

    def test_no_store_is_uncacheable(self):
        assert not CacheStatus.NO_STORE.cacheable

    def test_values_round_trip(self):
        for status in CacheStatus:
            assert CacheStatus(status.value) is status


class TestRequestLogCoercion:
    def test_method_string_coerced_to_enum(self):
        record = make_log(method="post")
        assert record.method is HttpMethod.POST

    def test_cache_status_string_coerced(self):
        record = make_log(cache_status="no-store", ttl_seconds=None)
        assert record.cache_status is CacheStatus.NO_STORE

    def test_invalid_method_raises(self):
        with pytest.raises(ValueError):
            make_log(method="FETCH")


class TestContentTypeProperties:
    def test_content_type_strips_parameters(self):
        record = make_log(mime_type="application/json; charset=utf-8")
        assert record.content_type == "application/json"

    def test_content_type_lowercases(self):
        record = make_log(mime_type="Application/JSON")
        assert record.content_type == "application/json"

    def test_is_json_true_for_json(self):
        assert make_log(mime_type="application/json").is_json

    def test_is_json_false_for_structured_suffix(self):
        # The paper filters on the exact token, not +json suffixes.
        assert not make_log(mime_type="application/problem+json").is_json

    def test_is_html(self):
        assert make_log(mime_type="text/html; charset=utf-8").is_html
        assert not make_log(mime_type="application/json").is_html


class TestTaxonomyProperties:
    def test_get_is_download_not_upload(self):
        record = make_log(method=HttpMethod.GET)
        assert record.is_download and not record.is_upload

    def test_post_is_upload(self):
        record = make_log(method=HttpMethod.POST, request_bytes=128)
        assert record.is_upload and not record.is_download

    def test_cacheable_follows_cache_status(self):
        assert make_log(cache_status=CacheStatus.MISS).cacheable
        assert not make_log(
            cache_status=CacheStatus.NO_STORE, ttl_seconds=None
        ).cacheable

    def test_object_id_combines_domain_and_url(self):
        record = make_log(domain="a.example.com", url="/x?y=1")
        assert record.object_id == "a.example.com/x?y=1"

    def test_client_id_combines_ip_hash_and_ua(self):
        record = make_log(client_ip_hash="ff00", user_agent="curl/7.64.0")
        assert record.client_id == "ff00|curl/7.64.0"

    def test_client_id_with_missing_ua(self):
        record = make_log(user_agent=None)
        assert record.client_id.endswith("|")


class TestSerialization:
    def test_to_dict_flattens_enums(self):
        data = make_log().to_dict()
        assert data["method"] == "GET"
        assert data["cache_status"] == "hit"

    def test_round_trip(self):
        record = make_log(method=HttpMethod.POST, request_bytes=77)
        assert RequestLog.from_dict(record.to_dict()) == record

    def test_from_dict_ignores_unknown_keys(self):
        data = make_log().to_dict()
        data["unexpected"] = "value"
        record = RequestLog.from_dict(data)
        assert record.domain == "fastnews.example.com"

    def test_with_fields_replaces(self):
        record = make_log()
        changed = record.with_fields(status=404)
        assert changed.status == 404
        assert record.status == 200

    def test_records_are_hashable(self):
        assert len({make_log(), make_log()}) == 1


class TestKeyHelpers:
    def test_object_key(self):
        assert object_key("d.com", "/p") == "d.com/p"

    def test_client_key_none_ua(self):
        assert client_key("abcd", None) == "abcd|"

    def test_client_key_distinguishes_ua(self):
        assert client_key("abcd", "x") != client_key("abcd", "y")
