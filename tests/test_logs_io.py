"""Unit tests for repro.logs.io."""

import gzip
import json

import pytest

from repro.logs.io import (
    TSV_COLUMNS,
    LogTailer,
    read_jsonl,
    read_logs,
    read_tsv,
    tail_records,
    write_jsonl,
    write_logs,
    write_tsv,
)
from repro.logs.record import CacheStatus, HttpMethod
from tests.conftest import make_log


@pytest.fixture
def records():
    return [
        make_log(),
        make_log(
            method=HttpMethod.POST,
            request_bytes=512,
            cache_status=CacheStatus.NO_STORE,
            ttl_seconds=None,
            user_agent=None,
        ),
        make_log(url="/api/v1/item/99", status=404),
    ]


class TestJsonl:
    def test_round_trip(self, records, tmp_path):
        path = tmp_path / "logs.jsonl"
        assert write_jsonl(records, path) == 3
        assert list(read_jsonl(path)) == records

    def test_gzip_round_trip(self, records, tmp_path):
        path = tmp_path / "logs.jsonl.gz"
        write_jsonl(records, path)
        with open(path, "rb") as handle:
            assert handle.read(2) == b"\x1f\x8b"  # gzip magic
        assert list(read_jsonl(path)) == records

    def test_blank_lines_skipped(self, records, tmp_path):
        path = tmp_path / "logs.jsonl"
        write_jsonl(records[:1], path)
        with open(path, "a") as handle:
            handle.write("\n\n")
        assert len(list(read_jsonl(path))) == 1

    def test_malformed_line_reports_line_number(self, tmp_path):
        path = tmp_path / "logs.jsonl"
        write_jsonl([make_log()], path)
        with open(path, "a") as handle:
            handle.write("{not json\n")
        with pytest.raises(ValueError, match="line 2"):
            list(read_jsonl(path))


class TestTsv:
    def test_round_trip(self, records, tmp_path):
        path = tmp_path / "logs.tsv"
        assert write_tsv(records, path) == 3
        assert list(read_tsv(path)) == records

    def test_gzip_round_trip(self, records, tmp_path):
        path = tmp_path / "logs.tsv.gz"
        write_tsv(records, path)
        assert list(read_tsv(path)) == records

    def test_none_user_agent_round_trips(self, tmp_path):
        record = make_log(user_agent=None)
        path = tmp_path / "logs.tsv"
        write_tsv([record], path)
        assert next(read_tsv(path)).user_agent is None

    def test_tab_in_user_agent_escaped(self, tmp_path):
        record = make_log(user_agent="weird\tagent\nstring")
        path = tmp_path / "logs.tsv"
        write_tsv([record], path)
        assert next(read_tsv(path)).user_agent == "weird\tagent\nstring"

    def test_backslash_in_user_agent_escaped(self, tmp_path):
        record = make_log(user_agent="path\\to\\thing")
        path = tmp_path / "logs.tsv"
        write_tsv([record], path)
        assert next(read_tsv(path)).user_agent == "path\\to\\thing"

    def test_column_count_mismatch_raises(self, tmp_path):
        path = tmp_path / "logs.tsv"
        path.write_text("just\tthree\tcolumns\n")
        with pytest.raises(ValueError, match="line 1"):
            list(read_tsv(path))

    def test_column_order_is_stable(self):
        assert TSV_COLUMNS[0] == "timestamp"
        assert len(TSV_COLUMNS) == 13


class TestFormatDispatch:
    def test_write_logs_jsonl(self, records, tmp_path):
        path = tmp_path / "x.jsonl"
        write_logs(records, path)
        assert list(read_logs(path)) == records

    def test_write_logs_tsv_gz(self, records, tmp_path):
        path = tmp_path / "x.tsv.gz"
        write_logs(records, path)
        assert list(read_logs(path)) == records

    def test_unknown_extension_rejected(self, records, tmp_path):
        with pytest.raises(ValueError, match="cannot infer"):
            write_logs(records, tmp_path / "x.csv")

    def test_reading_unknown_extension_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="cannot infer"):
            list(read_logs(tmp_path / "x.parquet"))

    def test_readers_are_lazy(self, records, tmp_path):
        path = tmp_path / "x.jsonl"
        write_logs(records, path)
        iterator = read_logs(path)
        assert next(iterator) == records[0]


class TestResilientReading:
    def test_skip_mode_drops_bad_jsonl_lines(self, records, tmp_path):
        path = tmp_path / "logs.jsonl"
        write_jsonl(records, path)
        with open(path, "a") as handle:
            handle.write("{truncated\n")
            handle.write('{"timestamp": "not-a-number"}\n')
        recovered = list(read_jsonl(path, on_error="skip"))
        assert recovered == records

    def test_skip_mode_drops_bad_tsv_lines(self, records, tmp_path):
        path = tmp_path / "logs.tsv"
        write_tsv(records, path)
        with open(path, "a") as handle:
            handle.write("only\tthree\tcolumns\n")
        recovered = list(read_tsv(path, on_error="skip"))
        assert recovered == records

    def test_raise_mode_is_default(self, records, tmp_path):
        path = tmp_path / "logs.jsonl"
        write_jsonl(records, path)
        with open(path, "a") as handle:
            handle.write("{bad\n")
        with pytest.raises(ValueError):
            list(read_jsonl(path))

    def test_invalid_on_error_value(self, records, tmp_path):
        path = tmp_path / "logs.jsonl"
        write_jsonl(records, path)
        with pytest.raises(ValueError, match="on_error"):
            list(read_jsonl(path, on_error="ignore"))

    def test_read_logs_passes_through(self, records, tmp_path):
        path = tmp_path / "logs.tsv.gz"
        write_logs(records, path)
        assert list(read_logs(path, on_error="skip")) == records


class TestLogTailer:
    def test_file_written_in_two_stages(self, records, tmp_path):
        path = tmp_path / "growing.jsonl"
        write_jsonl(records[:2], path)
        tailer = LogTailer(path)
        assert tailer.poll() == records[:2]
        assert tailer.poll() == []  # nothing new, nothing re-read
        with open(path, "a") as handle:
            for record in records[2:]:
                handle.write(json.dumps(record.to_dict()) + "\n")
        assert tailer.poll() == records[2:]
        assert tailer.poll() == []

    def test_partial_line_buffers_until_completed(self, records, tmp_path):
        path = tmp_path / "growing.jsonl"
        line = json.dumps(records[0].to_dict())
        path.write_text(line[:20])  # torn mid-record, no newline
        tailer = LogTailer(path)
        assert tailer.poll() == []  # never parses half a line
        with open(path, "a") as handle:
            handle.write(line[20:] + "\n")
        assert tailer.poll() == records[:1]

    def test_tsv_files_tail_too(self, records, tmp_path):
        path = tmp_path / "growing.tsv"
        write_tsv(records[:1], path)
        tailer = LogTailer(path)
        assert tailer.poll() == records[:1]

    def test_missing_file_polls_empty_until_it_appears(self, records, tmp_path):
        path = tmp_path / "later.jsonl"
        tailer = LogTailer(path)
        assert tailer.poll() == []
        write_jsonl(records, path)
        assert tailer.poll() == records

    def test_gzip_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="gzip"):
            LogTailer(tmp_path / "logs.jsonl.gz")

    def test_malformed_line_skipped_by_default(self, records, tmp_path):
        path = tmp_path / "growing.jsonl"
        write_jsonl(records[:1], path)
        with open(path, "a") as handle:
            handle.write("{torn write\n")
        tailer = LogTailer(path)
        assert tailer.poll() == records[:1]
        tailer_strict = LogTailer(path, on_error="raise")
        with pytest.raises(ValueError, match="tailing"):
            tailer_strict.poll()

    def test_tail_records_generator_ends_after_idle_polls(
        self, records, tmp_path
    ):
        path = tmp_path / "growing.jsonl"
        write_jsonl(records, path)
        recovered = list(
            tail_records(path, poll_interval=0.001, idle_polls=2)
        )
        assert recovered == records
