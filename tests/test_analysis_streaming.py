"""Unit tests for repro.analysis.streaming."""

import pytest

from repro.analysis.streaming import WindowedCharacterizer, WindowStats
from repro.logs.record import CacheStatus, HttpMethod
from tests.conftest import make_log


@pytest.fixture
def characterizer():
    return WindowedCharacterizer(window_s=60.0)


def stream():
    return [
        make_log(timestamp=10.0),
        make_log(timestamp=20.0, mime_type="text/html"),
        make_log(
            timestamp=30.0,
            method=HttpMethod.POST,
            request_bytes=10,
            cache_status=CacheStatus.NO_STORE,
            ttl_seconds=None,
        ),
        make_log(timestamp=70.0),   # second window
        make_log(timestamp=200.0),  # fourth window (third is empty)
    ]


class TestWindowing:
    def test_window_boundaries(self, characterizer):
        windows = list(characterizer.windows(stream()))
        assert [w.window_start for w in windows] == [0.0, 60.0, 120.0, 180.0]

    def test_counts_per_window(self, characterizer):
        windows = list(characterizer.windows(stream()))
        assert windows[0].total_requests == 3
        assert windows[1].total_requests == 1
        assert windows[2].total_requests == 0
        assert windows[3].total_requests == 1

    def test_empty_windows_emitted(self, characterizer):
        windows = list(characterizer.windows(stream()))
        assert windows[2].total_requests == 0
        assert windows[2].json_share == 0.0

    def test_unordered_stream_rejected(self, characterizer):
        logs = [make_log(timestamp=100.0), make_log(timestamp=10.0)]
        with pytest.raises(ValueError, match="time-ordered"):
            list(characterizer.windows(logs))

    def test_empty_stream(self, characterizer):
        assert list(characterizer.windows([])) == []

    def test_invalid_window_width(self):
        with pytest.raises(ValueError):
            WindowedCharacterizer(window_s=0)

    def test_lazy_yield(self, characterizer):
        iterator = characterizer.windows(stream())
        first = next(iterator)
        assert first.window_start == 0.0


class TestWindowStats:
    def test_json_share(self, characterizer):
        first = next(characterizer.windows(stream()))
        assert first.json_share == pytest.approx(2 / 3)

    def test_json_html_ratio(self, characterizer):
        first = next(characterizer.windows(stream()))
        assert first.json_html_ratio == pytest.approx(2.0)

    def test_ratio_with_no_html(self):
        window = WindowStats(0.0, 60.0, total_requests=1, json_requests=1)
        assert window.json_html_ratio == float("inf")

    def test_get_share(self, characterizer):
        first = next(characterizer.windows(stream()))
        assert first.get_share == pytest.approx(2 / 3)

    def test_uncacheable_share_of_json(self, characterizer):
        first = next(characterizer.windows(stream()))
        assert first.uncacheable_share == pytest.approx(1 / 2)

    def test_device_shares(self, characterizer):
        first = next(characterizer.windows(stream()))
        shares = first.device_shares()
        assert shares.get("mobile", 0) == pytest.approx(1.0)

    def test_device_tracking_disabled(self):
        characterizer = WindowedCharacterizer(window_s=60.0, track_devices=False)
        first = next(characterizer.windows(stream()))
        assert first.device_counts == {}

    def test_client_count(self, characterizer):
        first = next(characterizer.windows(stream()))
        assert first.client_count == 1


class TestSeries:
    def test_metric_series(self, characterizer):
        series = characterizer.series(stream(), "json_share")
        assert len(series) == 4

    def test_on_synthetic_dataset(self, short_dataset):
        characterizer = WindowedCharacterizer(window_s=120.0)
        windows = list(characterizer.windows(short_dataset.logs))
        # 600s dataset → 5 windows of 120s.
        assert 4 <= len(windows) <= 6
        busy = [w for w in windows if w.total_requests > 100]
        for window in busy:
            assert 0.5 < window.json_share <= 1.0
            assert window.client_count > 10

    def test_diurnal_visible_in_long_dataset(self, long_dataset):
        characterizer = WindowedCharacterizer(
            window_s=3600.0, track_devices=False
        )
        volumes = [
            w.total_requests for w in characterizer.windows(long_dataset.logs)
        ]
        assert len(volumes) >= 23
        # The diurnal curve makes the busiest hour much busier than
        # the quietest.
        assert max(volumes) > 1.5 * (min(volumes) + 1)
