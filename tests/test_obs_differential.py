"""Differential tests: metrics snapshots are backend-invariant.

The acceptance bar for the observability layer is the engine's own:
a parallel run (thread *and* process backends) must produce a
deterministic metrics snapshot equal, field by field, to the serial
run over the same shard plan.  Gauges and ``*_seconds`` timings are
the documented nondeterministic surface and are excluded by
:meth:`MetricsRegistry.deterministic_snapshot`; everything else —
shard counts, retry counts, record histograms, span counts — must be
bit-identical no matter how the scheduler interleaved the shards.

Every run pins ``num_shards`` explicitly: the engine's default shard
count scales with the worker count, and a differential test is only
meaningful over one shard plan.
"""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.core.pipeline import (
    run_characterization_parallel,
    run_ngram_parallel,
    run_periodicity_parallel,
    run_stream,
)
from repro.obs import runtime
from repro.obs.registry import MetricsRegistry
from repro.periodicity.detector import DetectorConfig
from repro.synth.workload import WorkloadBuilder, short_term_config

NUM_SHARDS = 8


@pytest.fixture(autouse=True)
def _no_ambient_registry():
    runtime.install(None)
    yield
    runtime.install(None)


@pytest.fixture(scope="module")
def records():
    return WorkloadBuilder(short_term_config(3_000, seed=7)).build().logs


def snapshot_of(run, records, *, workers, backend):
    registry = MetricsRegistry()
    with obs.installed(registry):
        run(records, workers=workers, backend=backend)
    return registry.deterministic_snapshot()


class TestEngineBackendInvariance:
    def _assert_backend_invariant(self, run, records):
        serial = snapshot_of(run, records, workers=1, backend="serial")
        thread = snapshot_of(run, records, workers=4, backend="thread")
        process = snapshot_of(run, records, workers=4, backend="process")
        assert serial["counters"], "instrumentation recorded nothing"
        assert thread == serial
        assert process == serial

    def test_characterization_metrics_backend_invariant(self, records):
        def run(records, *, workers, backend):
            run_characterization_parallel(
                records, workers=workers, backend=backend,
                num_shards=NUM_SHARDS,
            )

        self._assert_backend_invariant(run, records)

    def test_periodicity_metrics_backend_invariant(self, records):
        def run(records, *, workers, backend):
            run_periodicity_parallel(
                records, workers=workers, backend=backend,
                num_shards=NUM_SHARDS,
                detector_config=DetectorConfig(permutations=5),
            )

        self._assert_backend_invariant(run, records)

    def test_ngram_metrics_backend_invariant(self, records):
        def run(records, *, workers, backend):
            run_ngram_parallel(
                records, workers=workers, backend=backend,
                num_shards=NUM_SHARDS,
            )

        self._assert_backend_invariant(run, records)

    def test_expected_engine_counters_present(self, records):
        registry = MetricsRegistry()
        with obs.installed(registry):
            run_characterization_parallel(
                records, workers=2, backend="thread", num_shards=NUM_SHARDS
            )
        counters = registry.snapshot()["counters"]
        assert counters["engine.runs"] == 1
        assert counters["engine.shards_planned"] == NUM_SHARDS
        assert counters["engine.shards_mapped"] == NUM_SHARDS
        assert counters["engine.shards_completed"] == NUM_SHARDS
        assert counters["engine.shards_failed"] == 0
        histograms = registry.snapshot()["histograms"]
        assert histograms["engine.shard_records"]["count"] == NUM_SHARDS
        # Per-shard wall time is recorded, one sample per shard.
        assert histograms["engine.shard_seconds"]["count"] == NUM_SHARDS

    def test_no_registry_installed_records_nothing(self, records):
        # The ambient-install contract: without a registry the run is
        # untouched and leaves no telemetry anywhere.
        run_characterization_parallel(
            records, workers=2, backend="thread", num_shards=NUM_SHARDS
        )
        assert runtime.active() is None

    def test_checkpoint_resume_shifts_counters(self, records, tmp_path):
        ckpt = str(tmp_path / "ckpt")
        first = MetricsRegistry()
        with obs.installed(first):
            run_characterization_parallel(
                records, workers=2, backend="thread",
                num_shards=NUM_SHARDS, checkpoint_dir=ckpt,
            )
        second = MetricsRegistry()
        with obs.installed(second):
            run_characterization_parallel(
                records, workers=2, backend="thread",
                num_shards=NUM_SHARDS, checkpoint_dir=ckpt,
            )
        c1 = first.snapshot()["counters"]
        c2 = second.snapshot()["counters"]
        assert c1["engine.shards_completed"] == NUM_SHARDS
        assert c1["checkpoint.saves"] == NUM_SHARDS
        assert c2["engine.shards_from_checkpoint"] == NUM_SHARDS
        assert c2.get("engine.shards_mapped", 0) == 0
        assert c2["checkpoint.loads"] == NUM_SHARDS


class TestStreamConservation:
    def test_obs_counters_mirror_stream_accounting(self, records):
        registry = MetricsRegistry()
        with obs.installed(registry):
            result = run_stream(
                records,
                window_s=120.0,
                detect_periods=False,
                predict_urls=False,
            )
        counters = registry.snapshot()["counters"]
        assert counters["windows.records_in"] == len(records)
        assert (
            counters["windows.records_windowed"]
            + counters["windows.late_dropped"]
            + counters.get("windows.resumed_skips", 0)
            == counters["windows.records_in"]
        )
        assert counters["windows.sealed"] == result.sealed_windows
        assert counters["stream.windows_sealed"] == result.sealed_windows

    def test_queued_ingest_delivery_matches_windowing(self, records):
        registry = MetricsRegistry()
        with obs.installed(registry):
            run_stream(
                records,
                window_s=120.0,
                detect_periods=False,
                predict_urls=False,
                ingest_workers=2,
                queue_policy="block",
            )
        counters = registry.snapshot()["counters"]
        assert counters["ingest.records_delivered"] == len(records)
        assert (
            counters["ingest.records_delivered"]
            == counters["windows.records_in"]
        )
        assert counters["ingest.records_dropped"] == 0


class TestCliMetricsFlag:
    def test_characterize_writes_snapshot_and_trace(self, tmp_path, capsys):
        from repro.cli import main

        metrics = tmp_path / "metrics.json"
        trace = tmp_path / "spans.jsonl"
        code = main(
            ["characterize", "--requests", "2000", "--workers", "2",
             "--metrics", str(metrics), "--trace", str(trace)]
        )
        assert code == 0
        capsys.readouterr()
        snap = json.loads(metrics.read_text())
        assert snap["counters"]["engine.runs"] == 1
        assert snap["counters"]["engine.shards_completed"] >= 1
        spans = [
            json.loads(line) for line in trace.read_text().splitlines()
        ]
        assert any(s["name"] == "pipeline.characterization" for s in spans)
        assert all(s["status"] == "ok" for s in spans)

    def test_prometheus_output_for_non_json_suffix(self, tmp_path, capsys):
        from repro.cli import main

        metrics = tmp_path / "metrics.prom"
        code = main(
            ["characterize", "--requests", "2000", "--workers", "2",
             "--metrics", str(metrics)]
        )
        assert code == 0
        capsys.readouterr()
        text = metrics.read_text()
        assert "# TYPE engine_runs counter" in text
        assert "engine_runs 1" in text

    def test_stream_metrics_flag(self, tmp_path, capsys):
        from repro.cli import main

        metrics = tmp_path / "metrics.json"
        code = main(
            ["stream", "--requests", "1500", "--window", "300",
             "--no-periods", "--no-predictions", "--metrics", str(metrics)]
        )
        assert code == 0
        capsys.readouterr()
        snap = json.loads(metrics.read_text())
        assert snap["counters"]["stream.windows_sealed"] >= 1
        assert "windows.records_in" in snap["counters"]

    def test_without_flags_no_registry_is_installed(self, capsys):
        from repro.cli import main

        code = main(["characterize", "--requests", "1500"])
        assert code == 0
        capsys.readouterr()
        assert runtime.active() is None
