"""Shared fixtures: small reproducible datasets and log factories."""

from __future__ import annotations

import pytest

from repro.logs.record import CacheStatus, HttpMethod, RequestLog
from repro.synth.workload import (
    WorkloadBuilder,
    long_term_config,
    short_term_config,
)


def make_log(**overrides) -> RequestLog:
    """A valid baseline log record with per-test overrides."""
    defaults = dict(
        timestamp=1_559_347_200.0,
        client_ip_hash="ab12cd34ef56ab78",
        user_agent="NewsReader/5.2.1 (iPhone; iOS 13.1; Scale/3.00) CFNetwork/1107.1",
        method=HttpMethod.GET,
        domain="fastnews.example.com",
        url="/api/v1/home",
        mime_type="application/json",
        status=200,
        response_bytes=2048,
        cache_status=CacheStatus.HIT,
        request_bytes=0,
        ttl_seconds=300.0,
        edge_id="edge-1",
    )
    defaults.update(overrides)
    return RequestLog(**defaults)


@pytest.fixture
def log_factory():
    return make_log


@pytest.fixture(scope="session")
def short_dataset():
    """A small short-term dataset shared across the test session."""
    return WorkloadBuilder(
        short_term_config(total_requests=12_000, seed=42)
    ).build()


@pytest.fixture(scope="session")
def long_dataset():
    """A small long-term dataset shared across the test session."""
    return WorkloadBuilder(
        long_term_config(total_requests=20_000, seed=42, num_domains=60)
    ).build()


@pytest.fixture(scope="session")
def short_json_logs(short_dataset):
    return [record for record in short_dataset.logs if record.is_json]


@pytest.fixture(scope="session")
def long_json_logs(long_dataset):
    return [record for record in long_dataset.logs if record.is_json]
